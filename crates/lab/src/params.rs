//! Scenario parameter schemas, presets and override parsing.
//!
//! Every scenario declares its knobs as [`ParamSpec`]s: a name, a
//! one-line description, and a value for each scale preset. The CLI
//! resolves a preset, applies `--set name=value` overrides (parsed and
//! type-checked against the schema *before* anything runs), and hands the
//! scenario a read-only [`ResolvedParams`] view.

use std::fmt;

/// Run scale preset.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub enum Scale {
    /// Shrunken parameters for CI smoke runs.
    Quick,
    /// Paper-scale parameters (the default, mirroring the figures).
    Paper,
}

impl Scale {
    /// Lower-case preset name as recorded in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// A typed parameter value.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// Integer knob (counts, sizes, seeds; `0` conventionally means
    /// "disabled" where a scenario documents it).
    Int(i64),
    /// Floating-point knob (resolutions, thresholds).
    Float(f64),
    /// Text knob (secrets, labels).
    Str(String),
    /// Integer sweep axis, e.g. `25,50,100`.
    IntList(Vec<i64>),
    /// Text sweep axis, e.g. `5us,fuzzy-5us,1ms`.
    StrList(Vec<String>),
}

impl ParamValue {
    /// Kind name for messages and `describe` output.
    pub fn kind(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Str(_) => "str",
            ParamValue::IntList(_) => "int-list",
            ParamValue::StrList(_) => "str-list",
        }
    }

    /// Parse `text` as the same kind as `self` (the preset value fixes
    /// each parameter's type).
    pub fn parse_same_kind(&self, text: &str) -> Result<ParamValue, String> {
        let fail = |what: &str| Err(format!("expected {what}, got {text:?}"));
        match self {
            ParamValue::Int(_) => match text.parse() {
                Ok(v) => Ok(ParamValue::Int(v)),
                Err(_) => fail("an integer"),
            },
            ParamValue::Float(_) => match text.parse() {
                Ok(v) => Ok(ParamValue::Float(v)),
                Err(_) => fail("a number"),
            },
            ParamValue::Str(_) => Ok(ParamValue::Str(text.to_string())),
            ParamValue::IntList(_) => {
                let mut out = Vec::new();
                for part in text.split(',').filter(|p| !p.is_empty()) {
                    match part.trim().parse() {
                        Ok(v) => out.push(v),
                        Err(_) => return fail("a comma-separated integer list"),
                    }
                }
                Ok(ParamValue::IntList(out))
            }
            ParamValue::StrList(_) => Ok(ParamValue::StrList(
                text.split(',')
                    .filter(|p| !p.is_empty())
                    .map(|p| p.trim().to_string())
                    .collect(),
            )),
        }
    }

    /// JSON form for the report's `config` object.
    pub fn to_value(&self) -> racer_results::Value {
        use racer_results::Value;
        match self {
            ParamValue::Int(v) => Value::Int(*v),
            ParamValue::Float(v) => Value::Float(*v),
            ParamValue::Str(v) => Value::Str(v.clone()),
            ParamValue::IntList(v) => Value::from(v.clone()),
            ParamValue::StrList(v) => Value::from(v.clone()),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v}"),
            ParamValue::IntList(v) => {
                let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
                write!(f, "{}", parts.join(","))
            }
            ParamValue::StrList(v) => write!(f, "{}", v.join(",")),
        }
    }
}

/// One declared scenario parameter.
#[derive(Clone, Debug)]
pub struct ParamSpec {
    /// Override key (`--set name=value`).
    pub name: &'static str,
    /// One-line description for `describe`.
    pub description: &'static str,
    /// Value under the quick preset.
    pub quick: ParamValue,
    /// Value under the paper preset.
    pub paper: ParamValue,
}

impl ParamSpec {
    /// Integer parameter with per-preset values.
    pub fn int(name: &'static str, description: &'static str, quick: i64, paper: i64) -> Self {
        ParamSpec {
            name,
            description,
            quick: ParamValue::Int(quick),
            paper: ParamValue::Int(paper),
        }
    }

    /// Float parameter with per-preset values.
    pub fn float(name: &'static str, description: &'static str, quick: f64, paper: f64) -> Self {
        ParamSpec {
            name,
            description,
            quick: ParamValue::Float(quick),
            paper: ParamValue::Float(paper),
        }
    }

    /// String parameter with per-preset values.
    pub fn str(name: &'static str, description: &'static str, quick: &str, paper: &str) -> Self {
        ParamSpec {
            name,
            description,
            quick: ParamValue::Str(quick.to_string()),
            paper: ParamValue::Str(paper.to_string()),
        }
    }

    /// Integer-list parameter with per-preset values.
    pub fn int_list(
        name: &'static str,
        description: &'static str,
        quick: &[i64],
        paper: &[i64],
    ) -> Self {
        ParamSpec {
            name,
            description,
            quick: ParamValue::IntList(quick.to_vec()),
            paper: ParamValue::IntList(paper.to_vec()),
        }
    }

    /// String-list parameter with per-preset values.
    pub fn str_list(
        name: &'static str,
        description: &'static str,
        quick: &[&str],
        paper: &[&str],
    ) -> Self {
        let conv = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        ParamSpec {
            name,
            description,
            quick: ParamValue::StrList(conv(quick)),
            paper: ParamValue::StrList(conv(paper)),
        }
    }

    /// The preset value for `scale`.
    pub fn preset(&self, scale: Scale) -> &ParamValue {
        match scale {
            Scale::Quick => &self.quick,
            Scale::Paper => &self.paper,
        }
    }
}

/// Fully resolved parameters for one run: preset plus overrides.
#[derive(Clone, Debug)]
pub struct ResolvedParams {
    values: Vec<(&'static str, ParamValue)>,
}

impl ResolvedParams {
    /// Resolve `specs` under `scale`, then apply `(name, value)` overrides.
    /// Unknown override names and kind mismatches are caller errors.
    pub fn resolve(
        specs: &[ParamSpec],
        scale: Scale,
        overrides: &[(String, String)],
    ) -> Result<ResolvedParams, String> {
        let mut values: Vec<(&'static str, ParamValue)> = specs
            .iter()
            .map(|s| (s.name, s.preset(scale).clone()))
            .collect();
        for (key, text) in overrides {
            let spec = specs
                .iter()
                .find(|s| s.name == key)
                .ok_or_else(|| format!("unknown parameter {key:?}"))?;
            let parsed = spec
                .preset(scale)
                .parse_same_kind(text)
                .map_err(|e| format!("parameter {key:?}: {e}"))?;
            let slot = values
                .iter_mut()
                .find(|(n, _)| n == key)
                .expect("resolved above");
            slot.1 = parsed;
        }
        Ok(ResolvedParams { values })
    }

    fn lookup(&self, name: &str) -> &ParamValue {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("scenario read undeclared parameter {name:?}"))
    }

    /// Integer parameter as `i64`.
    pub fn i64(&self, name: &str) -> i64 {
        match self.lookup(name) {
            ParamValue::Int(v) => *v,
            other => panic!("parameter {name:?} is {}, not int", other.kind()),
        }
    }

    /// Integer parameter as `usize` (must be non-negative).
    pub fn usize(&self, name: &str) -> usize {
        usize::try_from(self.i64(name))
            .unwrap_or_else(|_| panic!("parameter {name:?} must be non-negative"))
    }

    /// Integer parameter as `u64` (must be non-negative).
    pub fn u64(&self, name: &str) -> u64 {
        u64::try_from(self.i64(name))
            .unwrap_or_else(|_| panic!("parameter {name:?} must be non-negative"))
    }

    /// Float parameter.
    pub fn f64(&self, name: &str) -> f64 {
        match self.lookup(name) {
            ParamValue::Float(v) => *v,
            other => panic!("parameter {name:?} is {}, not float", other.kind()),
        }
    }

    /// String parameter.
    pub fn str(&self, name: &str) -> &str {
        match self.lookup(name) {
            ParamValue::Str(v) => v,
            other => panic!("parameter {name:?} is {}, not str", other.kind()),
        }
    }

    /// Integer-list parameter as `usize`s.
    pub fn usize_list(&self, name: &str) -> Vec<usize> {
        match self.lookup(name) {
            ParamValue::IntList(v) => v
                .iter()
                .map(|&x| {
                    usize::try_from(x)
                        .unwrap_or_else(|_| panic!("parameter {name:?} must be non-negative"))
                })
                .collect(),
            other => panic!("parameter {name:?} is {}, not int-list", other.kind()),
        }
    }

    /// Integer-list parameter as `u64`s.
    pub fn u64_list(&self, name: &str) -> Vec<u64> {
        self.usize_list(name)
            .into_iter()
            .map(|x| x as u64)
            .collect()
    }

    /// String-list parameter.
    pub fn str_list(&self, name: &str) -> Vec<String> {
        match self.lookup(name) {
            ParamValue::StrList(v) => v.clone(),
            other => panic!("parameter {name:?} is {}, not str-list", other.kind()),
        }
    }

    /// All resolved values in declaration order (for the report's `config`
    /// object).
    pub fn entries(&self) -> &[(&'static str, ParamValue)] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("trials", "trial count", 3, 12),
            ParamSpec::int_list("points", "sweep axis", &[1, 2], &[10, 20, 30]),
            ParamSpec::str("secret", "leaked text", "OK", "LONGER"),
        ]
    }

    #[test]
    fn presets_resolve_by_scale() {
        let p = ResolvedParams::resolve(&specs(), Scale::Quick, &[]).unwrap();
        assert_eq!(p.i64("trials"), 3);
        assert_eq!(p.usize_list("points"), vec![1, 2]);
        let p = ResolvedParams::resolve(&specs(), Scale::Paper, &[]).unwrap();
        assert_eq!(p.i64("trials"), 12);
        assert_eq!(p.str("secret"), "LONGER");
    }

    #[test]
    fn overrides_apply_and_typecheck() {
        let over = vec![
            ("trials".to_string(), "7".to_string()),
            ("points".to_string(), "5,6,7".to_string()),
        ];
        let p = ResolvedParams::resolve(&specs(), Scale::Quick, &over).unwrap();
        assert_eq!(p.i64("trials"), 7);
        assert_eq!(p.usize_list("points"), vec![5, 6, 7]);

        let bad = vec![("trials".to_string(), "many".to_string())];
        assert!(ResolvedParams::resolve(&specs(), Scale::Quick, &bad).is_err());
        let unknown = vec![("nope".to_string(), "1".to_string())];
        assert!(ResolvedParams::resolve(&specs(), Scale::Quick, &unknown).is_err());
    }

    #[test]
    #[should_panic(expected = "undeclared parameter")]
    fn reading_undeclared_parameter_panics() {
        let p = ResolvedParams::resolve(&specs(), Scale::Quick, &[]).unwrap();
        let _ = p.i64("missing");
    }
}
