//! Report provenance: what produced this JSON file.

use racer_results::Value;

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or a repository) is unavailable. Stable for a given checkout
/// state, so deterministic reports stay byte-identical across runs.
pub fn git_describe() -> String {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

/// The report's `provenance` object: generator identity plus checkout
/// state.
pub fn to_value() -> Value {
    Value::object()
        .with("generator", "racer-lab")
        .with("version", env!("CARGO_PKG_VERSION"))
        .with("git", git_describe())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_nonempty_and_stable() {
        let a = git_describe();
        assert!(!a.is_empty());
        assert_eq!(a, git_describe());
    }
}
