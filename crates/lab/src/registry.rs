//! The scenario registry.
//!
//! A [`Scenario`] is one addressable experiment: a stable name, a
//! parameter schema with quick/paper presets, and a run function that
//! produces both a structured [`racer_results::Value`] and the
//! human-readable text the old per-figure binaries printed. The registry
//! is the single enumeration CI, the CLI and the golden tests all share.

use crate::error::LabError;
use crate::params::{ParamSpec, ResolvedParams, Scale};
use racer_results::Value;

/// A scenario body: produces structured results + text, or a typed
/// [`LabError`] for recoverable problems (invalid parameter combinations
/// and the like). Panics raised inside the body do not abort the run —
/// the runner catches them at the isolation boundary and records a
/// `status: "failed"` cell instead.
pub type RunFn = fn(&RunContext) -> Result<ScenarioOutput, LabError>;

/// What one scenario run produces.
pub struct ScenarioOutput {
    /// Structured results — becomes the report's `results` member.
    pub data: Value,
    /// Plot-ready human text (what the legacy binary printed).
    pub text: String,
}

/// Everything a scenario run may read.
pub struct RunContext {
    /// Resolved parameters (preset + overrides).
    pub params: ResolvedParams,
    /// Scenario seed: the registered base seed unless overridden with
    /// `--seed`. Scenarios with stochastic inputs derive their streams
    /// from it; purely structural scenarios ignore it.
    pub seed: u64,
    /// The preset this run resolved against (some scenarios record it in
    /// their payload for baseline compatibility).
    pub scale: Scale,
}

/// One registered experiment.
pub struct Scenario {
    /// Stable machine-readable name (also the legacy binary name and the
    /// `results/<name>.json` stem).
    pub name: &'static str,
    /// Paper artefact label, e.g. `Figure 8` or `§7.4`.
    pub title: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Parameter schema with per-preset values.
    pub params: Vec<ParamSpec>,
    /// Base seed recorded in the report and fed to [`RunContext::seed`].
    pub seed: u64,
    /// Whether two runs with identical config produce byte-identical
    /// reports. Everything except wall-clock benchmarks is deterministic;
    /// the golden tests enforce this flag.
    pub deterministic: bool,
    /// The experiment body.
    pub run: RunFn,
}

/// All registered scenarios, in presentation order (figures, tables,
/// evaluations, then infrastructure benchmarks).
pub fn registry() -> Vec<Scenario> {
    crate::scenarios::all()
}

/// Look up one scenario by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_all_legacy_binaries_and_unique_names() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        assert!(
            names.len() >= 17,
            "expected >= 17 scenarios, got {}",
            names.len()
        );
        let unique: HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate scenario names");
        // Every legacy racer-bench binary must stay addressable by name.
        for legacy in [
            "countermeasures_eval",
            "detection_eval",
            "eviction_set_eval",
            "fig03_plru_walk",
            "fig07_repetition",
            "fig08_granularity_add",
            "fig09_granularity_mul",
            "fig10_reorder_distribution",
            "fig11_arbitrary_replacement",
            "fig12_arithmetic",
            "noise_sensitivity_eval",
            "perf_baseline",
            "spectre_back_eval",
            "table_granularity",
            "table_par_seq",
            "timer_mitigations_eval",
            "window_ablation_eval",
        ] {
            assert!(names.contains(&legacy), "missing scenario {legacy}");
        }
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("fig08_granularity_add").is_some());
        assert!(find("no_such_scenario").is_none());
    }
}
