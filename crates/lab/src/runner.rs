//! Executing scenarios and assembling reports.

use crate::params::{ResolvedParams, Scale};
use crate::registry::{RunContext, Scenario};
use racer_results::Value;
use std::path::{Path, PathBuf};

/// Everything one scenario run produced.
pub struct Report {
    /// Scenario name (`results/<name>.json` stem).
    pub name: &'static str,
    /// The full report document (config, provenance, results).
    pub json: Value,
    /// Human-readable text output.
    pub text: String,
}

/// Options shared by every scenario in one `run` invocation.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Preset selecting each parameter's default.
    pub scale: Scale,
    /// `--set name=value` overrides (validated per scenario).
    pub overrides: Vec<(String, String)>,
    /// `--seed` override for the scenario's registered base seed.
    pub seed: Option<u64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: Scale::Paper,
            overrides: Vec::new(),
            seed: None,
        }
    }
}

impl RunOptions {
    /// Quick-preset options with no overrides.
    pub fn quick() -> Self {
        RunOptions {
            scale: Scale::Quick,
            ..Default::default()
        }
    }
}

/// Run one scenario and wrap its output in the versioned report document:
///
/// ```json
/// {
///   "schema": "racer-lab/v1",
///   "scenario": ..., "title": ..., "description": ...,
///   "scale": "quick" | "paper",
///   "seed": N,
///   "config": { <resolved parameters> },
///   "provenance": { "generator": ..., "version": ..., "git": ... },
///   "results": <scenario data>
/// }
/// ```
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> Result<Report, String> {
    let params = ResolvedParams::resolve(&scenario.params, opts.scale, &opts.overrides)
        .map_err(|e| format!("{}: {e}", scenario.name))?;
    let seed = opts.seed.unwrap_or(scenario.seed);
    let ctx = RunContext {
        params,
        seed,
        scale: opts.scale,
    };
    let out = (scenario.run)(&ctx);

    let mut config = Value::object();
    for (name, value) in ctx.params.entries() {
        config.insert(name, value.to_value());
    }
    let json = Value::object()
        .with("schema", "racer-lab/v1")
        .with("scenario", scenario.name)
        .with("title", scenario.title)
        .with("description", scenario.description)
        .with("scale", opts.scale.name())
        .with("seed", seed)
        .with("deterministic", scenario.deterministic)
        .with("config", config)
        .with("provenance", crate::provenance::to_value())
        .with("results", out.data);
    Ok(Report {
        name: scenario.name,
        json,
        text: out.text,
    })
}

impl Report {
    /// Write the report to `<dir>/<name>.json` (creating `dir`), returning
    /// the path written.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.json.to_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;

    #[test]
    fn report_document_has_the_v1_envelope() {
        let sc = find("countermeasures_eval").unwrap();
        let report = run_scenario(&sc, &RunOptions::quick()).unwrap();
        let j = &report.json;
        assert_eq!(
            j.get("schema").and_then(Value::as_str),
            Some("racer-lab/v1")
        );
        assert_eq!(
            j.get("scenario").and_then(Value::as_str),
            Some("countermeasures_eval")
        );
        assert_eq!(j.get("scale").and_then(Value::as_str), Some("quick"));
        assert!(j.get("config").is_some());
        assert!(j.get("results").is_some());
        let prov = j.get("provenance").unwrap();
        assert_eq!(
            prov.get("generator").and_then(Value::as_str),
            Some("racer-lab")
        );
        assert!(!report.text.is_empty());
    }

    #[test]
    fn seed_override_lands_in_the_report() {
        let sc = find("spectre_back_eval").unwrap();
        let opts = RunOptions {
            seed: Some(99),
            ..RunOptions::quick()
        };
        let report = run_scenario(&sc, &opts).unwrap();
        assert_eq!(report.json.get("seed").and_then(Value::as_i64), Some(99));
    }

    #[test]
    fn bad_override_is_an_error_not_a_panic() {
        let sc = find("fig08_granularity_add").unwrap();
        let opts = RunOptions {
            overrides: vec![("no_such_param".into(), "1".into())],
            ..RunOptions::quick()
        };
        assert!(run_scenario(&sc, &opts).is_err());
    }

    #[test]
    fn write_creates_the_results_file() {
        let sc = find("countermeasures_eval").unwrap();
        let report = run_scenario(&sc, &RunOptions::quick()).unwrap();
        let dir = std::env::temp_dir().join("racer-lab-test-write");
        let path = report.write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Value::parse(&text).unwrap(), report.json);
        std::fs::remove_dir_all(&dir).ok();
    }
}
