//! Executing scenarios and assembling reports.
//!
//! This is the crash-isolation boundary of the pipeline. A scenario body
//! that panics (a bug, a poisoned parameter read, an injected fault) is
//! caught here and surfaced as a typed [`LabError::ScenarioPanic`]; a body
//! that exceeds the `--timeout-secs` budget becomes a
//! [`LabError::Timeout`]. Either way the CLI records the failure as a
//! `status: "failed"` report cell (see [`failed_report`]) and the sibling
//! scenarios in the same run complete untouched — one bad trial never
//! poisons the sweep.

use crate::error::LabError;
use crate::fault;
use crate::params::{ResolvedParams, Scale};
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use racer_results::Value;
use std::path::{Path, PathBuf};

/// Everything one scenario run produced.
#[derive(Debug)]
pub struct Report {
    /// Scenario name (`results/<name>.json` stem).
    pub name: &'static str,
    /// The full report document (config, provenance, results).
    pub json: Value,
    /// Human-readable text output.
    pub text: String,
}

/// Options shared by every scenario in one `run` invocation.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Preset selecting each parameter's default.
    pub scale: Scale,
    /// `--set name=value` overrides (validated per scenario).
    pub overrides: Vec<(String, String)>,
    /// `--seed` override for the scenario's registered base seed.
    pub seed: Option<u64>,
    /// `--timeout-secs` wall-clock budget per scenario trial. `None`
    /// (the default) runs unbounded.
    pub timeout_secs: Option<u64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: Scale::Paper,
            overrides: Vec::new(),
            seed: None,
            timeout_secs: None,
        }
    }
}

impl RunOptions {
    /// Quick-preset options with no overrides.
    pub fn quick() -> Self {
        RunOptions {
            scale: Scale::Quick,
            ..Default::default()
        }
    }
}

/// Resolve a scenario's parameters against `opts`, as a typed error.
pub fn resolve_params(scenario: &Scenario, opts: &RunOptions) -> Result<ResolvedParams, LabError> {
    ResolvedParams::resolve(&scenario.params, opts.scale, &opts.overrides)
        .map_err(|e| LabError::param(scenario.name, e))
}

/// The common head of every report document (everything before
/// `results` / failure members): schema, identity, scale, seed, config,
/// provenance.
fn envelope(scenario: &Scenario, opts: &RunOptions, seed: u64, config: Value) -> Value {
    Value::object()
        .with("schema", "racer-lab/v1")
        .with("scenario", scenario.name)
        .with("title", scenario.title)
        .with("description", scenario.description)
        .with("scale", opts.scale.name())
        .with("seed", seed)
        .with("deterministic", scenario.deterministic)
        .with("config", config)
        .with("provenance", crate::provenance::to_value())
}

fn config_value(params: &ResolvedParams) -> Value {
    let mut config = Value::object();
    for (name, value) in params.entries() {
        config.insert(name, value.to_value());
    }
    config
}

/// Run the scenario body inside the isolation boundary: the
/// `scenario:<name>` fault site fires first, then the body; panics are
/// caught and mapped to [`LabError::ScenarioPanic`]. The parameter
/// accessors' own panics (kind mismatches, negative values) funnel
/// through here too, so a scenario misreading its schema becomes a
/// labelled failed cell rather than an aborted sweep.
fn run_isolated(
    name: &'static str,
    run: crate::registry::RunFn,
    ctx: &RunContext,
) -> Result<ScenarioOutput, LabError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fault::hit_point(&format!("scenario:{name}"));
        run(ctx)
    }))
    .unwrap_or_else(|payload| {
        Err(LabError::scenario_panic(
            name,
            racer_cpu::batch::panic_message(payload.as_ref()),
        ))
    })
}

/// Run one scenario and wrap its output in the versioned report document:
///
/// ```json
/// {
///   "schema": "racer-lab/v1",
///   "scenario": ..., "title": ..., "description": ...,
///   "scale": "quick" | "paper",
///   "seed": N,
///   "config": { <resolved parameters> },
///   "provenance": { "generator": ..., "version": ..., "git": ... },
///   "results": <scenario data>
/// }
/// ```
///
/// Failures are typed: parameter problems are [`LabError::Param`], a
/// panicking body is [`LabError::ScenarioPanic`], a body that outlives
/// `opts.timeout_secs` is [`LabError::Timeout`]. The success document is
/// byte-identical to what pre-taxonomy versions wrote — failure markers
/// only ever appear in [`failed_report`] documents.
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> Result<Report, LabError> {
    let params = resolve_params(scenario, opts)?;
    let seed = opts.seed.unwrap_or(scenario.seed);
    let config = config_value(&params);
    let ctx = RunContext {
        params,
        seed,
        scale: opts.scale,
    };
    let out = match opts.timeout_secs {
        None => run_isolated(scenario.name, scenario.run, &ctx)?,
        Some(secs) => {
            // The body runs on a watchdog thread so the caller can give
            // up at the deadline. On timeout the thread is detached, not
            // killed — it may run to completion in the background (see
            // KNOWN_FAILURES.md); its result is discarded.
            let (tx, rx) = std::sync::mpsc::channel();
            let run = scenario.run;
            let name = scenario.name;
            std::thread::spawn(move || {
                let _ = tx.send(run_isolated(name, run, &ctx));
            });
            match rx.recv_timeout(std::time::Duration::from_secs(secs)) {
                Ok(result) => result?,
                Err(_) => return Err(LabError::timeout(scenario.name, secs)),
            }
        }
    };

    let json = envelope(scenario, opts, seed, config).with("results", out.data);
    Ok(Report {
        name: scenario.name,
        json,
        text: out.text,
    })
}

/// Build the `status: "failed"` report cell for a scenario whose trial
/// failed recoverably (panic, timeout). The document keeps the full v1
/// envelope — config, seed, provenance — so the dashboard can still place
/// the cell, and adds:
///
/// ```json
/// "status": "failed",
/// "error": { "kind": "scenario-panic", "message": "..." },
/// "results": null
/// ```
///
/// Successful reports carry no `status` member at all, which keeps them
/// byte-identical to the pinned goldens.
pub fn failed_report(scenario: &Scenario, opts: &RunOptions, err: &LabError) -> Report {
    let seed = opts.seed.unwrap_or(scenario.seed);
    // Config resolution can itself be the failure; fall back to empty.
    let config = resolve_params(scenario, opts)
        .map(|p| config_value(&p))
        .unwrap_or_else(|_| Value::object());
    let json = envelope(scenario, opts, seed, config)
        .with("status", "failed")
        .with(
            "error",
            Value::object()
                .with("kind", err.kind())
                .with("message", err.message()),
        )
        .with("results", Value::Null);
    let text = format!(
        "# {}: {}\n# status: failed ({})\n# {}\n",
        scenario.title,
        scenario.description,
        err.kind(),
        err.message()
    );
    Report {
        name: scenario.name,
        json,
        text,
    }
}

impl Report {
    /// Write the report to `<dir>/<name>.json` atomically (tmp sibling +
    /// rename, creating `dir`), returning the path written.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, LabError> {
        let path = dir.join(format!("{}.json", self.name));
        crate::fsio::write_atomic(&path, &self.json.to_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;

    #[test]
    fn report_document_has_the_v1_envelope() {
        let sc = find("countermeasures_eval").unwrap();
        let report = run_scenario(&sc, &RunOptions::quick()).unwrap();
        let j = &report.json;
        assert_eq!(
            j.get("schema").and_then(Value::as_str),
            Some("racer-lab/v1")
        );
        assert_eq!(
            j.get("scenario").and_then(Value::as_str),
            Some("countermeasures_eval")
        );
        assert_eq!(j.get("scale").and_then(Value::as_str), Some("quick"));
        assert!(j.get("config").is_some());
        assert!(j.get("results").is_some());
        // No failure markers on the success path — goldens depend on it.
        assert!(j.get("status").is_none());
        assert!(j.get("error").is_none());
        let prov = j.get("provenance").unwrap();
        assert_eq!(
            prov.get("generator").and_then(Value::as_str),
            Some("racer-lab")
        );
        assert!(!report.text.is_empty());
    }

    #[test]
    fn seed_override_lands_in_the_report() {
        let sc = find("spectre_back_eval").unwrap();
        let opts = RunOptions {
            seed: Some(99),
            ..RunOptions::quick()
        };
        let report = run_scenario(&sc, &opts).unwrap();
        assert_eq!(report.json.get("seed").and_then(Value::as_i64), Some(99));
    }

    #[test]
    fn bad_override_is_a_param_error_not_a_panic() {
        let sc = find("fig08_granularity_add").unwrap();
        let opts = RunOptions {
            overrides: vec![("no_such_param".into(), "1".into())],
            ..RunOptions::quick()
        };
        let err = run_scenario(&sc, &opts).unwrap_err();
        assert_eq!(err.kind(), "param");
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn shard_misuse_is_a_param_error() {
        let sc = find("timer_mitigations_eval").unwrap();
        let opts = RunOptions {
            overrides: vec![("shard".into(), "9/4".into())],
            ..RunOptions::quick()
        };
        let err = run_scenario(&sc, &opts).unwrap_err();
        assert_eq!(err.kind(), "param");
    }

    #[test]
    fn panicking_scenario_is_isolated_and_labelled() {
        // A wrong-kind parameter read panics inside the body; the
        // isolation boundary must catch it and type it.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut sc = find("fig08_granularity_add").unwrap();
        fn bad(ctx: &RunContext) -> Result<crate::registry::ScenarioOutput, LabError> {
            let _ = ctx.params.str("max_target"); // declared int, read as str
            unreachable!()
        }
        sc.run = bad;
        let err = run_scenario(&sc, &RunOptions::quick()).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(err.kind(), "scenario-panic");
        assert!(err.message().contains("max_target"), "{}", err.message());
    }

    #[test]
    fn failed_report_carries_the_error_and_null_results() {
        let sc = find("countermeasures_eval").unwrap();
        let err = LabError::scenario_panic("countermeasures_eval", "boom");
        let report = failed_report(&sc, &RunOptions::quick(), &err);
        let j = &report.json;
        assert_eq!(j.get("status").and_then(Value::as_str), Some("failed"));
        let e = j.get("error").unwrap();
        assert_eq!(
            e.get("kind").and_then(Value::as_str),
            Some("scenario-panic")
        );
        // `error.message` is the full human message (LabError::message),
        // uniform across kinds — the same string the stderr line carries.
        assert_eq!(
            e.get("message").and_then(Value::as_str),
            Some("scenario countermeasures_eval panicked: boom")
        );
        assert_eq!(j.get("results"), Some(&Value::Null));
        assert_eq!(
            j.get("schema").and_then(Value::as_str),
            Some("racer-lab/v1")
        );
        assert!(j.get("config").is_some());
        // The document must round-trip through the strict parser.
        assert_eq!(Value::parse(&j.to_pretty()).unwrap(), *j);
    }

    #[test]
    fn timeout_is_enforced_and_typed() {
        let mut sc = find("countermeasures_eval").unwrap();
        fn slow(_: &RunContext) -> Result<crate::registry::ScenarioOutput, LabError> {
            std::thread::sleep(std::time::Duration::from_secs(60));
            unreachable!()
        }
        sc.run = slow;
        let opts = RunOptions {
            timeout_secs: Some(1),
            ..RunOptions::quick()
        };
        let start = std::time::Instant::now();
        let err = run_scenario(&sc, &opts).unwrap_err();
        assert!(start.elapsed() < std::time::Duration::from_secs(30));
        assert_eq!(err.kind(), "timeout");
        assert_eq!(err.exit_code(), 7);
    }

    #[test]
    fn write_creates_the_results_file_atomically() {
        let sc = find("countermeasures_eval").unwrap();
        let report = run_scenario(&sc, &RunOptions::quick()).unwrap();
        let dir = std::env::temp_dir().join("racer-lab-test-write");
        let path = report.write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Value::parse(&text).unwrap(), report.json);
        assert!(!dir.join("countermeasures_eval.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
