//! Evaluation scenarios: §7.3 SpectreBack, §7.4 eviction sets, the §8
//! countermeasure and detection studies, and the extension sweeps
//! (noise sensitivity, timer mitigations, window ablation).

use super::header;
use crate::error::LabError;
use crate::params::ParamSpec;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use hacky_racers::experiments::{
    countermeasures, detection, ev_eval, noise_sensitivity, spectre_eval, timer_mitigations,
    window_ablation,
};
use racer_results::Value;
use std::fmt::Write as _;

/// All evaluation scenarios.
pub fn all() -> Vec<Scenario> {
    vec![
        spectre_back_eval(),
        eviction_set_eval(),
        countermeasures_eval(),
        detection_eval(),
        noise_sensitivity_eval(),
        timer_mitigations_eval(),
        window_ablation_eval(),
    ]
}

fn spectre_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let secret = ctx.params.str("secret").as_bytes().to_vec();
    let resolution = ctx.params.f64("timer_resolution_ns");
    let eval = spectre_eval::evaluate(&secret, resolution, ctx.seed);
    let mut text = header(
        "§7.3",
        "SpectreBack leak rate and accuracy (5 µs timer, DRAM jitter)",
    );
    let _ = writeln!(text, "{}", spectre_eval::render(&eval));
    let _ = writeln!(text, "# paper: 4.3 kbit/s at >88% accuracy in Chrome 88.");
    let _ = writeln!(
        text,
        "# (simulation has no JS/browser overhead, so the rate runs higher;"
    );
    let _ = writeln!(
        text,
        "#  the shape — kbit/s-scale with high accuracy — is what reproduces.)"
    );
    Ok(ScenarioOutput {
        data: eval.to_value(),
        text,
    })
}

fn spectre_back_eval() -> Scenario {
    Scenario {
        name: "spectre_back_eval",
        title: "§7.3",
        description: "SpectreBack leak rate and accuracy through a coarse browser timer",
        params: vec![
            ParamSpec::str(
                "secret",
                "secret bytes to leak",
                "ASPLOS",
                "Hacky Racers leak secrets backwards in time!",
            ),
            ParamSpec::float(
                "timer_resolution_ns",
                "browser timer resolution",
                5_000.0,
                5_000.0,
            ),
        ],
        seed: 0xD00D,
        deterministic: true,
        run: spectre_run,
    }
}

fn ev_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let (trials, pool_pages) = (ctx.params.usize("trials"), ctx.params.usize("pool_pages"));
    let eval = ev_eval::evaluate(trials, pool_pages);
    let mut text = header("§7.4", "LLC eviction-set generation success rate");
    let _ = writeln!(text, "{}", ev_eval::render(&eval));
    let _ = writeln!(
        text,
        "# paper: 100% success after replacing the SharedArrayBuffer timer."
    );
    Ok(ScenarioOutput {
        data: eval.to_value(),
        text,
    })
}

fn eviction_set_eval() -> Scenario {
    Scenario {
        name: "eviction_set_eval",
        title: "§7.4",
        description: "eviction-set profiling success rate with the Hacky-Racers timer",
        params: vec![
            ParamSpec::int("trials", "profiling attempts", 3, 12),
            ParamSpec::int("pool_pages", "candidate pool size (pages)", 48, 48),
        ],
        seed: 0,
        deterministic: true,
        run: ev_run,
    }
}

fn countermeasures_run(_ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let rows = countermeasures::countermeasure_matrix();
    let mut text = header("§8", "countermeasure matrix: gadget vs defence");
    let _ = writeln!(text, "{}", countermeasures::render(&rows));
    let _ = writeln!(
        text,
        "# paper: Spectre-class defences stop transient P/A races only;"
    );
    let _ = writeln!(
        text,
        "# the branch-free reorder race requires actual in-order execution."
    );
    Ok(ScenarioOutput {
        data: Value::object().with("matrix", countermeasures::to_value(&rows)),
        text,
    })
}

fn countermeasures_eval() -> Scenario {
    Scenario {
        name: "countermeasures_eval",
        title: "§8",
        description: "which racing gadgets survive which hardware defences",
        params: Vec::new(),
        seed: 0,
        deterministic: true,
        run: countermeasures_run,
    }
}

fn detection_run(_ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let profiles = detection::profile_suite();
    let mut text = header(
        "§8 detection",
        "hardware-counter profiles: gadgets vs benign workloads",
    );
    let _ = writeln!(text, "{}", detection::render(&profiles));
    let _ = writeln!(
        text,
        "# paper: the L1-miss counter sees the PLRU magnifier but is a weak"
    );
    let _ = writeln!(
        text,
        "# classifier (benign pointer chasing trips it too); the arithmetic"
    );
    let _ = writeln!(
        text,
        "# gadget has no cache signature and needs a backend-bound detector."
    );
    Ok(ScenarioOutput {
        data: Value::object().with("profiles", detection::to_value(&profiles)),
        text,
    })
}

fn detection_eval() -> Scenario {
    Scenario {
        name: "detection_eval",
        title: "§8 detection",
        description: "performance-counter profiles of gadget vs benign workloads",
        params: Vec::new(),
        seed: 0,
        deterministic: true,
        run: detection_run,
    }
}

fn noise_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let secret = ctx.params.str("secret").as_bytes().to_vec();
    let levels = ctx.params.u64_list("jitter_levels");
    let points = noise_sensitivity::sweep(&secret, &levels);
    let mut text = header(
        "noise sensitivity",
        "SpectreBack bit accuracy vs DRAM jitter",
    );
    let _ = writeln!(text, "{}", noise_sensitivity::render(&points));
    let _ = writeln!(
        text,
        "# paper: >88% accuracy on live hardware; the margin above that bar"
    );
    let _ = writeln!(
        text,
        "# is visible here as jitter grows past realistic levels."
    );
    Ok(ScenarioOutput {
        data: Value::object().with("points", noise_sensitivity::to_value(&points)),
        text,
    })
}

fn noise_sensitivity_eval() -> Scenario {
    Scenario {
        name: "noise_sensitivity_eval",
        title: "noise sensitivity",
        description: "SpectreBack accuracy vs DRAM-jitter magnitude",
        params: vec![
            ParamSpec::str("secret", "secret bytes to leak", "OK", "NOISE"),
            ParamSpec::int_list(
                "jitter_levels",
                "jitter magnitudes (cycles)",
                &[0, 60],
                &[0, 15, 30, 60, 120, 240, 400],
            ),
        ],
        seed: 0,
        deterministic: true,
        run: noise_run,
    }
}

fn mitigations_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let timers = ctx.params.str_list("timers");
    let timer_refs: Vec<&str> = timers.iter().map(String::as_str).collect();
    let rounds = ctx.params.usize_list("rounds");
    let trials = ctx.params.usize("trials");
    let (shard_k, shard_n) = crate::cli::parse_shard(ctx.params.str("shard")).map_err(|e| {
        LabError::param(
            "timer_mitigations_eval",
            format!("parameter \"shard\": {e}"),
        )
    })?;
    let points = timer_mitigations::sweep_sharded(&timer_refs, &rounds, trials, shard_k, shard_n);
    let mut text = header(
        "timer mitigations",
        "channel accuracy per timer model × magnifier rounds",
    );
    if shard_n > 1 {
        let _ = writeln!(
            text,
            "# trial-axis shard {shard_k}/{shard_n}: accuracies below score this slice's\n\
             # trials only — fold the N shard reports with `racer-lab merge`."
        );
    }
    let _ = writeln!(text, "{}", timer_mitigations::render(&points, &rounds));
    let _ = writeln!(
        text,
        "# paper §8: some magnifiers can be out-coarsened, the PLRU gadgets cannot —"
    );
    let _ = writeln!(
        text,
        "# for every finite resolution there is a round count that restores accuracy."
    );
    Ok(ScenarioOutput {
        data: Value::object().with("points", timer_mitigations::to_value(&points)),
        text,
    })
}

fn timer_mitigations_eval() -> Scenario {
    Scenario {
        name: "timer_mitigations_eval",
        title: "timer mitigations",
        description: "PLRU channel accuracy across browser timer mitigations × rounds",
        params: vec![
            ParamSpec::str_list(
                "timers",
                "timer models to sweep",
                &["5us", "5us+jitter", "fuzzy-5us", "100us", "1ms"],
                &["5us", "5us+jitter", "fuzzy-5us", "100us", "1ms"],
            ),
            ParamSpec::int_list(
                "rounds",
                "magnifier round counts",
                &[1_000, 8_000],
                &[500, 2_000, 8_000, 40_000, 200_000],
            ),
            ParamSpec::int("trials", "transmissions per cell", 3, 8),
            ParamSpec::str(
                "shard",
                "trial-axis slice K/N (CI legs run one slice each; merge folds them)",
                "1/1",
                "1/1",
            ),
        ],
        seed: 0,
        deterministic: true,
        run: mitigations_run,
    }
}

fn window_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let sizes = ctx.params.usize_list("rs_sizes");
    let max_probe = ctx.params.usize("max_probe");
    let points = window_ablation::window_sweep(&sizes, max_probe);
    let mut text = header(
        "§7.2 ablation",
        "racing-gadget reach vs scheduler window size",
    );
    let _ = writeln!(text, "{}", window_ablation::render(&points));
    let _ = writeln!(
        text,
        "# paper: \"the ROB capacity limits the length of the ref path to 54,"
    );
    let _ = writeln!(
        text,
        "# which in turn limits the largest execution time that we can time\"."
    );
    Ok(ScenarioOutput {
        data: Value::object().with("points", window_ablation::to_value(&points)),
        text,
    })
}

fn window_ablation_eval() -> Scenario {
    Scenario {
        name: "window_ablation_eval",
        title: "§7.2 ablation",
        description: "measurement reach vs scheduler (reservation-station) capacity",
        params: vec![
            ParamSpec::int_list(
                "rs_sizes",
                "scheduler capacities to sweep",
                &[32, 60],
                &[24, 32, 48, 60, 97, 128, 160],
            ),
            ParamSpec::int("max_probe", "largest target probed", 160, 160),
        ],
        seed: 0,
        deterministic: true,
        run: window_run,
    }
}
