//! Figure scenarios: 7 (repetition stacks), 8–9 (granularity), 10
//! (reorder distributions), 11–12 (magnifier sweeps).

use super::header;
use crate::error::LabError;
use crate::params::ParamSpec;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use hacky_racers::experiments::{distribution, granularity, magnifier_sweeps, repetition_figure};
use racer_results::Value;
use racer_time::Histogram;
use std::fmt::Write as _;

/// All figure scenarios in figure order.
pub fn all() -> Vec<Scenario> {
    vec![
        fig07_repetition(),
        fig08_granularity_add(),
        fig09_granularity_mul(),
        fig10_reorder_distribution(),
        fig11_arbitrary_replacement(),
        fig12_arithmetic(),
    ]
}

fn fig07_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let iterations = ctx.params.usize("iterations");
    let mut text = header(
        "Figure 7",
        "repetition gadgets need racing gadgets to show a difference",
    );
    let mut data = Value::object();
    for racing in [false, true] {
        let fig = repetition_figure::figure7(racing, iterations);
        let _ = write!(text, "\n{}", fig.render());
        data.insert(if racing { "racing" } else { "bare" }, fig.to_value());
    }
    Ok(ScenarioOutput { data, text })
}

fn fig07_repetition() -> Scenario {
    Scenario {
        name: "fig07_repetition",
        title: "Figure 7",
        description: "repetition-gadget stage-time stacks, bare (7a) and raced (7b)",
        params: vec![ParamSpec::int(
            "iterations",
            "repetition-gadget iterations",
            30,
            200,
        )],
        seed: 0,
        deterministic: true,
        run: fig07_run,
    }
}

/// Shared body of the two granularity figures.
fn granularity_output(
    figure: fn(usize, usize, usize) -> Vec<granularity::GranularitySeries>,
    ctx: &RunContext,
    head: String,
) -> Result<ScenarioOutput, LabError> {
    let series = figure(
        ctx.params.usize("max_target"),
        ctx.params.usize("step"),
        ctx.params.usize("max_ref"),
    );
    let mut text = head;
    for s in &series {
        let _ = writeln!(text, "{}", s.render());
    }
    let data = Value::object().with(
        "series",
        Value::Array(series.iter().map(|s| s.to_value()).collect()),
    );
    Ok(ScenarioOutput { data, text })
}

fn fig08_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    granularity_output(
        granularity::figure8,
        ctx,
        header("Figure 8", "targets (add, mul, leal) vs ADD reference path"),
    )
}

fn fig08_granularity_add() -> Scenario {
    Scenario {
        name: "fig08_granularity_add",
        title: "Figure 8",
        description: "racing-gadget granularity: targets vs an ADD reference path",
        params: vec![
            ParamSpec::int("max_target", "largest target-path length", 16, 35),
            ParamSpec::int("step", "target-length stride", 4, 1),
            ParamSpec::int("max_ref", "reference-path cap (ops)", 80, 80),
        ],
        seed: 0,
        deterministic: true,
        run: fig08_run,
    }
}

fn fig09_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    granularity_output(
        granularity::figure9,
        ctx,
        header("Figure 9", "targets (add, div) vs MUL reference path"),
    )
}

fn fig09_granularity_mul() -> Scenario {
    Scenario {
        name: "fig09_granularity_mul",
        title: "Figure 9",
        description: "racing-gadget granularity: targets vs a MUL reference path",
        params: vec![
            ParamSpec::int("max_target", "largest target-path length", 40, 145),
            ParamSpec::int("step", "target-length stride", 8, 4),
            ParamSpec::int("max_ref", "reference-path cap (ops)", 60, 60),
        ],
        seed: 0,
        deterministic: true,
        run: fig09_run,
    }
}

fn fig10_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let (trials, rounds) = (ctx.params.usize("trials"), ctx.params.usize("rounds"));
    let r = distribution::figure10(trials, rounds);
    let mut text = header(
        "Figure 10",
        "reorder-magnifier distributions (transmit 0 vs 1)",
    );
    let _ = writeln!(text, "{}", r.render());

    // ASCII histograms like the figure.
    let lo = r
        .transmit0_ms
        .iter()
        .chain(&r.transmit1_ms)
        .fold(f64::INFINITY, |a, &b| a.min(b));
    let hi = r
        .transmit0_ms
        .iter()
        .chain(&r.transmit1_ms)
        .fold(0.0f64, |a, &b| a.max(b));
    let width = ((hi - lo) / 20.0).max(1e-6);
    let _ = writeln!(text, "\n# transmit 0 histogram (ms):");
    let _ = writeln!(
        text,
        "{}",
        Histogram::from_samples(&r.transmit0_ms, lo, width, 20).render(40)
    );
    let _ = writeln!(text, "# transmit 1 histogram (ms):");
    let _ = writeln!(
        text,
        "{}",
        Histogram::from_samples(&r.transmit1_ms, lo, width, 20).render(40)
    );

    Ok(ScenarioOutput {
        data: r.to_value(),
        text,
    })
}

fn fig10_reorder_distribution() -> Scenario {
    Scenario {
        name: "fig10_reorder_distribution",
        title: "Figure 10",
        description: "reorder-magnifier execution-time distributions, transmit 0 vs 1",
        params: vec![
            ParamSpec::int("trials", "transmissions sampled per bit value", 10, 60),
            ParamSpec::int("rounds", "magnifier pattern repetitions", 800, 4000),
        ],
        seed: 0,
        deterministic: true,
        run: fig10_run,
    }
}

fn fig11_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let points = ctx.params.usize_list("points");
    let delay = ctx.params.usize("delay");
    let series = magnifier_sweeps::figure11(&points, delay);
    let mut text = header(
        "Figure 11",
        "arbitrary-replacement magnifier sweep (random L1)",
    );
    for s in &series {
        let _ = writeln!(text, "{}", s.render());
    }
    let data = Value::object().with(
        "series",
        Value::Array(series.iter().map(|s| s.to_value()).collect()),
    );
    Ok(ScenarioOutput { data, text })
}

fn fig11_arbitrary_replacement() -> Scenario {
    Scenario {
        name: "fig11_arbitrary_replacement",
        title: "Figure 11",
        description: "arbitrary-replacement magnifier growth vs pattern repeats",
        params: vec![
            ParamSpec::int_list(
                "points",
                "repeat counts to sweep",
                &[2, 4, 8, 12, 16],
                &[25, 50, 100, 200, 300, 400, 500, 600, 700, 800],
            ),
            ParamSpec::int("delay", "target delay (cycles) being magnified", 30, 30),
        ],
        seed: 0,
        deterministic: true,
        run: fig11_run,
    }
}

fn fig12_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let points = ctx.params.usize_list("points");
    let delay = ctx.params.usize("delay");
    let interrupt = match ctx.params.u64("interrupt_cycles") {
        0 => None,
        v => Some(v),
    };
    let mut text = header(
        "Figure 12",
        "arithmetic-only magnifier sweep (with interrupt bound)",
    );
    let bounded = magnifier_sweeps::figure12(&points, delay, interrupt);
    let _ = writeln!(text, "{}", bounded.render());
    let _ = writeln!(text, "# unbounded reference:");
    let small: Vec<usize> = points.iter().copied().take(4).collect();
    let unbounded = magnifier_sweeps::figure12(&small, delay, None);
    let _ = writeln!(text, "{}", unbounded.render());
    let data = Value::object()
        .with("bounded", bounded.to_value())
        .with("unbounded_reference", unbounded.to_value());
    Ok(ScenarioOutput { data, text })
}

fn fig12_arithmetic() -> Scenario {
    Scenario {
        name: "fig12_arithmetic",
        title: "Figure 12",
        description: "arithmetic-magnifier growth, saturated by the timer-interrupt drain",
        params: vec![
            ParamSpec::int_list(
                "points",
                "stage counts to sweep",
                &[25, 50, 100, 200],
                &[100, 250, 500, 1000, 2500, 5000, 7500, 10000, 15000, 20000],
            ),
            ParamSpec::int("delay", "target delay (cycles) being magnified", 20, 20),
            // Scaled so saturation lands inside the sweep, as the paper's
            // 4 ms tick does for its 15000-repeat knee. 0 disables.
            ParamSpec::int(
                "interrupt_cycles",
                "interrupt interval (0 = off)",
                20_000,
                2_000_000,
            ),
        ],
        seed: 0,
        deterministic: true,
        run: fig12_run,
    }
}
