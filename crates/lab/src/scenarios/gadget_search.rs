//! `gadget_search_eval` — automated racing-gadget discovery.
//!
//! Drives `hacky_racers::gadget_search`: a MAP-Elites-style search over
//! the racing-gadget template grammar, every candidate scored by fanning
//! its lowered target ladder through one warmed lockstep batch. The
//! payload reports the hand-written paper-racer baseline, the
//! per-generation log, the final novelty archive, the best and
//! finest-resolution discoveries (with the discovered-vs-hand-written
//! resolution ratio the acceptance bar gates on), and the committed
//! shipped gadgets re-evaluated under this run's fitness config.
//!
//! With `--set checkpoint_dir=DIR` the search journals its complete
//! state after every generation (`PR 6` checkpoint records, fault sites
//! `checkpoint:gadget_search_eval:gen<k>`); a killed run re-invoked with
//! the same arguments resumes from the last journaled generation and
//! produces byte-identical output — pinned end-to-end by
//! `crates/lab/tests/gadget_search_resume.rs`.

use std::fmt::Write as _;
use std::path::Path;

use crate::checkpoint::{identity_key, Checkpoint};
use crate::error::LabError;
use crate::params::ParamSpec;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use hacky_racers::gadget_search::search::{fitness_to_value, template_to_value};
use hacky_racers::gadget_search::{
    evaluate, hand_written_baseline, shipped_gadgets, Candidate, FitnessConfig, SearchConfig,
    SearchState, QUICK_FITNESS_FLOOR,
};
use racer_results::Value;

/// Per-run cycle ceiling: far above any sane candidate (a worst-case
/// template runs ~3k cycles), so only runaway behaviour is invalidated.
const CYCLE_BUDGET: u64 = 50_000;

/// Warmup depth of the shared evaluation snapshot.
const WARMUP_RUNS: usize = 8;

fn candidate_value(c: &Candidate) -> Value {
    Value::object()
        .with("id", c.id as i64)
        .with("generation", i64::from(c.generation))
        .with("template", template_to_value(&c.template))
        .with("fitness", fitness_to_value(&c.fitness))
}

fn run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let generations = ctx.params.usize("generations") as u32;
    let population = ctx.params.usize("population");
    let targets = ctx.params.usize_list("targets");
    let clock_len = ctx.params.usize("clock_len");
    let workers = ctx.params.usize("workers");
    let checkpoint_dir = ctx.params.str("checkpoint_dir").to_string();

    let cfg = SearchConfig {
        seed: ctx.seed,
        population,
        generations,
        fitness: FitnessConfig {
            targets,
            clock_len,
            cycle_budget: CYCLE_BUDGET,
            warmup_runs: WARMUP_RUNS,
        },
        workers,
    };

    let journal = if checkpoint_dir.is_empty() {
        None
    } else {
        Some(Checkpoint::open(Path::new(&checkpoint_dir))?)
    };
    let key = identity_key("gadget_search_eval", ctx.scale, ctx.seed, &ctx.params);

    // Resume from the newest journaled generation, if any. A record that
    // does not parse as search state is treated as absent (the journal
    // layer already rejected corrupt JSON and key conflicts).
    let mut state = SearchState::new(cfg.seed);
    let mut resumed_from = None;
    if let Some(journal) = &journal {
        for g in (0..generations).rev() {
            if let Some(v) = journal.load(&format!("gadget_search_eval:gen{g}"), &key)? {
                if let Some(s) = SearchState::from_value(&v) {
                    resumed_from = Some(g);
                    state = s;
                    break;
                }
            }
        }
    }

    let snap = cfg.fitness.snapshot();
    while state.generation < cfg.generations {
        state.step(&cfg, &snap);
        if let Some(journal) = &journal {
            journal.record(
                &format!("gadget_search_eval:gen{}", state.generation - 1),
                &key,
                &state.to_value(),
            )?;
        }
    }

    let baseline = evaluate(&hand_written_baseline(), &cfg.fitness, &snap);
    let best = state.best();
    // The acceptance metric: the finest usable discovered resolution vs.
    // the hand-written racer's.
    let finest = state
        .archive
        .values()
        .filter(|c| c.fitness.resolution_cycles_per_tick > 0.0)
        .min_by(|a, b| {
            a.fitness
                .resolution_cycles_per_tick
                .total_cmp(&b.fitness.resolution_cycles_per_tick)
                .then(a.id.cmp(&b.id))
        });
    let resolution_ratio =
        finest.map(|c| c.fitness.resolution_cycles_per_tick / baseline.resolution_cycles_per_tick);
    let floor_met = best.is_some_and(|c| c.fitness.score >= QUICK_FITNESS_FLOOR);

    let shipped: Vec<Value> = shipped_gadgets()
        .iter()
        .map(|g| {
            Value::object()
                .with("name", g.name)
                .with("seed", g.seed as i64)
                .with("generation", i64::from(g.generation))
                .with("id", g.id as i64)
                .with("template", template_to_value(&g.template))
                .with(
                    "fitness",
                    fitness_to_value(&evaluate(&g.template, &cfg.fitness, &snap)),
                )
        })
        .collect();

    let mut text = super::header(
        "gadget search",
        "automated racing-gadget discovery over the batched engine",
    );
    let _ = writeln!(
        text,
        "# seed {}  {} generations x {} candidates  targets {:?}  clock {}",
        cfg.seed, generations, population, cfg.fitness.targets, clock_len
    );
    if let Some(g) = resumed_from {
        let _ = writeln!(text, "# resumed from checkpoint generation {g}");
    }
    let _ = writeln!(
        text,
        "# gen  evaluated  invalid  new  improved  cells  best"
    );
    for l in &state.log {
        let _ = writeln!(
            text,
            "# {:>3}  {:>9}  {:>7}  {:>3}  {:>8}  {:>5}  {:.4}",
            l.generation,
            l.evaluated,
            l.invalid,
            l.new_cells,
            l.improved,
            l.archive_cells,
            l.best_score
        );
    }
    let _ = writeln!(
        text,
        "# baseline (hand-written racer): {:.4} cycles/tick, score {:.4}",
        baseline.resolution_cycles_per_tick, baseline.score
    );
    match (best, finest) {
        (Some(b), Some(f)) => {
            let _ = writeln!(
                text,
                "# best score {:.4} (id {}); finest resolution {:.4} cycles/tick (id {}, {:.2}x baseline)",
                b.fitness.score,
                b.id,
                f.fitness.resolution_cycles_per_tick,
                f.id,
                resolution_ratio.unwrap_or(f64::NAN)
            );
        }
        _ => {
            let _ = writeln!(text, "# search found no valid gadget");
        }
    }

    let data = Value::object()
        .with(
            "baseline",
            Value::object()
                .with("template", template_to_value(&hand_written_baseline()))
                .with("fitness", fitness_to_value(&baseline)),
        )
        .with(
            "generations",
            Value::Array(
                state
                    .log
                    .iter()
                    .map(|l| {
                        Value::object()
                            .with("generation", i64::from(l.generation))
                            .with("evaluated", i64::from(l.evaluated))
                            .with("invalid", i64::from(l.invalid))
                            .with("new_cells", i64::from(l.new_cells))
                            .with("improved", i64::from(l.improved))
                            .with("best_score", l.best_score)
                            .with("archive_cells", i64::from(l.archive_cells))
                    })
                    .collect(),
            ),
        )
        .with(
            "archive",
            Value::Array(state.archive.values().map(candidate_value).collect()),
        )
        .with("best", best.map_or(Value::Null, candidate_value))
        .with(
            "finest",
            finest.map_or(Value::Null, |c| {
                candidate_value(c).with(
                    "ratio_to_baseline",
                    resolution_ratio.map_or(Value::Null, Value::Float),
                )
            }),
        )
        .with("quick_floor", QUICK_FITNESS_FLOOR)
        .with("floor_met", floor_met)
        .with("shipped", Value::Array(shipped));

    Ok(ScenarioOutput { data, text })
}

/// Registration for the gadget-search evaluation.
pub fn gadget_search_eval() -> Scenario {
    Scenario {
        name: "gadget_search_eval",
        title: "gadget search",
        description: "automated racing-gadget discovery: template search scored on resolution, monotonicity and stealth",
        params: vec![
            ParamSpec::int("generations", "search generations", 8, 24),
            ParamSpec::int("population", "candidates per generation", 256, 512),
            ParamSpec::int_list(
                "targets",
                "measured-length ladder each candidate is scored on",
                &[0, 1, 2, 3, 4],
                &[0, 1, 2, 3, 4, 5, 6],
            ),
            ParamSpec::int("clock_len", "clock ops per lowered candidate", 96, 128),
            ParamSpec::int("workers", "evaluation threads (0 = all cores; any value, same results)", 0, 0),
            ParamSpec::str(
                "checkpoint_dir",
                "journal search state per generation into this directory (empty = off)",
                "",
                "",
            ),
        ],
        seed: 9,
        deterministic: true,
        run,
    }
}
