//! Scenario registrations: every figure, table and evaluation of the
//! paper, each a thin wrapper over the `hacky_racers::experiments`
//! drivers.
//!
//! | Paper artefact | Scenario |
//! |---|---|
//! | Figures 3–4 (PLRU state walks) | `fig03_plru_walk` |
//! | Figure 7 (repetition stacks) | `fig07_repetition` |
//! | Figures 8–9 (granularity) | `fig08_granularity_add`, `fig09_granularity_mul` |
//! | Figure 10 (reorder distributions) | `fig10_reorder_distribution` |
//! | Figures 11–12 (magnifier sweeps) | `fig11_arbitrary_replacement`, `fig12_arithmetic` |
//! | §7.2 / §6.3.3 tables | `table_granularity`, `table_par_seq` |
//! | §7.3 / §7.4 / §8 evaluations | `spectre_back_eval`, `eviction_set_eval`, `countermeasures_eval`, `detection_eval` |
//! | Extension studies | `noise_sensitivity_eval`, `timer_mitigations_eval`, `window_ablation_eval` |
//! | §9 SMT contention | `smt_contention_eval` |
//! | Automated gadget discovery | `gadget_search_eval` |
//! | Infrastructure benchmark | `perf_baseline` |

mod evals;
mod figures;
mod gadget_search;
mod perf;
mod plru_walk;
mod smt;
mod tables;

use crate::registry::Scenario;

/// Every registered scenario, in presentation order.
pub fn all() -> Vec<Scenario> {
    let mut out = vec![plru_walk::fig03_plru_walk()];
    out.extend(figures::all());
    out.extend(tables::all());
    out.extend(evals::all());
    out.push(smt::smt_contention_eval());
    out.push(gadget_search::gadget_search_eval());
    out.push(perf::perf_baseline());
    out
}

/// The standard figure header the legacy binaries printed.
pub(crate) fn header(figure: &str, description: &str) -> String {
    format!(
        "# ============================================================\n\
         # {figure}: {description}\n\
         # ============================================================\n"
    )
}
