//! Simulator-throughput baseline: committed instructions per host second
//! for the event-driven scheduler vs. the retained scan-based reference
//! scheduler, across the standard workload suite — plus sweep-throughput
//! rows comparing the fork-based batch engine against the classic
//! fresh-machine-per-point sweep, and `scenario-e2e` rows timing whole
//! experiments under the batched vs per-machine trial paths.
//!
//! The payload (`results`) is exactly the committed `BENCH_pipeline.json`
//! document, so the legacy `perf_baseline` binary can keep refreshing the
//! baseline and `racer-lab perf-check` can diff against it. Sweep rows
//! reuse the same column names (`event_driven_instrs_per_sec` holds the
//! batched engine, `reference_instrs_per_sec` the per-machine sweep), so
//! the existing perf gate covers them with no schema change.

use super::header;
use crate::error::LabError;
use crate::params::ParamSpec;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use hacky_racers::experiments::{spectre_eval, timer_mitigations, TrialPath};
use hacky_racers::gadget_search::{eval_cpu_config, FitnessConfig, GadgetTemplate, SplitMix64};
use racer_cpu::workloads::{
    alu_chain, measure_lockstep, measure_sweep, measure_workload, memory_stream, standard_suite,
};
use racer_cpu::{Backend, Cpu};
use racer_mem::HierarchyConfig;
use racer_results::Value;
use std::fmt::Write as _;
use std::time::Instant;

/// Untimed warmup executions each sweep point needs before its timed run.
/// Per-machine sweeps pay this per point; the batch engine pays it once
/// and forks — which is exactly the gap the sweep rows measure.
const SWEEP_WARMUP: usize = 24;

/// Loop iterations for the sweep-row programs. Fixed (not scaled by
/// `iters`) so the sweep rows measure identical work under both presets
/// and the perf gate's quick re-measurement is comparable to the
/// paper-scale baseline.
const SWEEP_ITERS: i64 = 2_000;

/// Timer models for the `e2e-timer-mitigations` row. The heavy magnifier
/// runs are timer-independent, so the batched trial path runs the
/// (rounds × trial × bit) grid once and scores it under every timer,
/// while the per-machine path re-runs the grid per timer — a structural
/// ~`E2E_TIMERS.len()`× collapse on top of lockstep batching.
const E2E_TIMERS: [&str; 5] = ["5us", "100us", "5us+jitter", "fuzzy-5us", "1ms"];

/// Magnifier round counts for the `e2e-timer-mitigations` row. Fixed
/// across presets (like [`SWEEP_ITERS`]) so the perf gate's quick
/// re-measurement runs the same work as the paper-scale baseline.
const E2E_ROUNDS: [usize; 2] = [192, 768];

/// Transmissions per (timer, rounds) cell for `e2e-timer-mitigations`.
const E2E_TRIALS: usize = 6;

/// Browser-timer resolutions for the `e2e-spectre-resolutions` row. The
/// SpectreBack machine run is timer-independent, so the batched path runs
/// the attack once and replays its recorded measurement windows through
/// each resolution — a structural `len()`× collapse.
const E2E_SPECTRE_RESOLUTIONS: [f64; 4] = [1_000.0, 5_000.0, 25_000.0, 100_000.0];

/// Secret each `e2e-spectre-resolutions` arm leaks.
const E2E_SPECTRE_SECRET: &[u8] = b"ASPLOS";

/// Sampled templates for the `search-throughput` row (each lowered at
/// every [`SEARCH_TARGETS`] entry — one generation's worth of fitness
/// batch, at the search's own traced evaluation config).
const SEARCH_CANDIDATES: usize = 24;

/// Target ladder the `search-throughput` candidates are lowered at.
const SEARCH_TARGETS: [usize; 3] = [0, 2, 4];

/// Warmup executions before candidate evaluation: the batched column
/// pays these once per row, the per-machine column once per program.
const SEARCH_WARMUP: usize = 16;

/// DRAM-jitter seed for the `e2e-spectre-resolutions` machines.
const E2E_SPECTRE_SEED: u64 = 42;

fn run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let iters = ctx.params.i64("iters");
    let reps = ctx.params.usize("reps");
    let sweep_points = ctx.params.usize("sweep_points");
    let mut text = header("perf baseline", "pipeline scheduler throughput");
    let _ = writeln!(
        text,
        "# pipeline scheduler throughput (committed Minstr/s, higher is better)"
    );
    let _ = writeln!(
        text,
        "# workload            event-driven   reference   speedup   ipc   mispredicts"
    );
    let mut rows = Vec::new();
    for w in &standard_suite(iters, reps) {
        let fast = measure_workload(w, Backend::EventDriven);
        let reference = measure_workload(w, Backend::Reference);
        assert_eq!(
            (fast.result.cycles, fast.result.committed, &fast.result.regs),
            (
                reference.result.cycles,
                reference.result.committed,
                &reference.result.regs
            ),
            "schedulers diverged on {}",
            w.name
        );
        let speedup = fast.instrs_per_sec / reference.instrs_per_sec;
        let _ = writeln!(
            text,
            "{:<21} {:>10.2}M {:>10.2}M {:>8.1}x {:>6.2} {:>10}",
            w.name,
            fast.instrs_per_sec / 1e6,
            reference.instrs_per_sec / 1e6,
            speedup,
            fast.result.ipc(),
            fast.result.mispredicts,
        );
        rows.push(
            Value::object()
                .with("workload", w.name)
                .with("description", w.description)
                .with("dyn_instrs_per_run", fast.result.committed)
                .with("cycles_per_run", fast.result.cycles)
                .with("mispredicts_per_run", fast.result.mispredicts)
                .with("squashed_per_run", fast.result.squashed_instrs)
                .with("ipc", round3(fast.result.ipc()))
                .with("event_driven_instrs_per_sec", fast.instrs_per_sec.round())
                .with("reference_instrs_per_sec", reference.instrs_per_sec.round())
                .with("speedup", round2(speedup)),
        );
    }
    let _ = writeln!(
        text,
        "# sweep throughput ({sweep_points} warmed points, {SWEEP_WARMUP} warmup runs each):"
    );
    let _ = writeln!(
        text,
        "# workload            batch-forked   per-machine  speedup"
    );
    let sweeps = [
        (
            "sweep-alu-chain",
            "warmed sweep: batch-engine forks (event-driven col) vs fresh machine per point",
            alu_chain(SWEEP_ITERS),
        ),
        (
            "sweep-memory-stream",
            "warmed cache-heavy sweep: batch-engine forks vs fresh machine per point",
            memory_stream(SWEEP_ITERS),
        ),
    ];
    for (name, description, prog) in &sweeps {
        let batched = measure_sweep(prog, SWEEP_WARMUP, sweep_points, Backend::Batched);
        let per_machine = measure_sweep(prog, SWEEP_WARMUP, sweep_points, Backend::EventDriven);
        assert_eq!(
            (
                batched.result.cycles,
                batched.result.committed,
                &batched.result.regs
            ),
            (
                per_machine.result.cycles,
                per_machine.result.committed,
                &per_machine.result.regs
            ),
            "sweep strategies diverged on {name}"
        );
        let speedup = batched.instrs_per_sec / per_machine.instrs_per_sec;
        let _ = writeln!(
            text,
            "{:<21} {:>10.2}M {:>10.2}M {:>8.1}x",
            name,
            batched.instrs_per_sec / 1e6,
            per_machine.instrs_per_sec / 1e6,
            speedup,
        );
        rows.push(
            Value::object()
                .with("workload", *name)
                .with("description", *description)
                .with("dyn_instrs_per_run", batched.result.committed)
                .with("cycles_per_run", batched.result.cycles)
                .with("mispredicts_per_run", batched.result.mispredicts)
                .with("squashed_per_run", batched.result.squashed_instrs)
                .with("ipc", round3(batched.result.ipc()))
                .with(
                    "event_driven_instrs_per_sec",
                    batched.instrs_per_sec.round(),
                )
                .with(
                    "reference_instrs_per_sec",
                    per_machine.instrs_per_sec.round(),
                )
                .with("speedup", round2(speedup)),
        );
    }
    // Lane-scaling row: 64 lockstep lanes vs 64 whole-machine forks from
    // the same warmed snapshot, warmup *outside* the timed region on both
    // sides — the engine's stepping throughput itself, with no warmup
    // amortisation in the ratio. Guards the COW-lane + adaptive-slice
    // scaling fix: lockstep must at least match forks at 64 lanes.
    const LOCKSTEP_LANES: usize = 64;
    let prog = memory_stream(SWEEP_ITERS);
    let lockstep = measure_lockstep(&prog, LOCKSTEP_LANES, Backend::Batched);
    let forked = measure_lockstep(&prog, LOCKSTEP_LANES, Backend::EventDriven);
    assert_eq!(
        (
            lockstep.result.cycles,
            lockstep.result.committed,
            &lockstep.result.regs
        ),
        (
            forked.result.cycles,
            forked.result.committed,
            &forked.result.regs
        ),
        "lockstep diverged from whole-machine forks"
    );
    let ratio = lockstep.instrs_per_sec / forked.instrs_per_sec;
    let _ = writeln!(
        text,
        "# lane scaling ({LOCKSTEP_LANES} lanes, warmup untimed): lockstep vs forked machines"
    );
    let _ = writeln!(
        text,
        "lockstep-64lane       {:>10.2}M {:>10.2}M {:>8.2}x",
        lockstep.instrs_per_sec / 1e6,
        forked.instrs_per_sec / 1e6,
        ratio,
    );
    rows.push(
        Value::object()
            .with("workload", "lockstep-64lane")
            .with(
                "description",
                "64-lane lockstep stepping (event-driven col) vs 64 whole-machine forks, warmup untimed",
            )
            .with("dyn_instrs_per_run", lockstep.result.committed)
            .with("cycles_per_run", lockstep.result.cycles)
            .with("mispredicts_per_run", lockstep.result.mispredicts)
            .with("squashed_per_run", lockstep.result.squashed_instrs)
            .with("ipc", round3(lockstep.result.ipc()))
            .with("event_driven_instrs_per_sec", lockstep.instrs_per_sec.round())
            .with("reference_instrs_per_sec", forked.instrs_per_sec.round())
            .with("speedup", round2(ratio)),
    );
    // Search-throughput row: gadget-search candidate evaluation, the
    // batched path (warm one machine, fan every lowered program through
    // `Snapshot::run_many`) vs the pre-batching shape (fresh machine +
    // full warmup per program). The snapshot is built inline — not via
    // `SnapshotCache` — so the batched column pays its warmup inside the
    // timed region too; the gap is warmup amortisation plus lockstep
    // decode sharing, exactly what the search loop banks per generation.
    {
        let fit = FitnessConfig::default();
        let cfg = eval_cpu_config(fit.cycle_budget);
        let hier = HierarchyConfig::small_plru;
        let warm = alu_chain(32);
        let mut rng = SplitMix64::new(7);
        let progs: Vec<_> = (0..SEARCH_CANDIDATES)
            .map(|_| GadgetTemplate::sample(&mut rng))
            .flat_map(|tpl| SEARCH_TARGETS.map(|target| tpl.lower(target, fit.clock_len).prog))
            .collect();
        let start = Instant::now();
        let mut cpu = Cpu::new(cfg, hier());
        for _ in 0..SEARCH_WARMUP {
            cpu.run_one(&warm, Backend::EventDriven);
        }
        let batched_results = cpu.snapshot().run_many(&progs);
        let batched_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut per_machine_results = Vec::with_capacity(progs.len());
        for prog in &progs {
            let mut cpu = Cpu::new(cfg, hier());
            for _ in 0..SEARCH_WARMUP {
                cpu.run_one(&warm, Backend::EventDriven);
            }
            per_machine_results.push(cpu.run_one(prog, Backend::EventDriven));
        }
        let per_machine_secs = start.elapsed().as_secs_f64();
        let mut committed = 0u64;
        for (b, p) in batched_results.iter().zip(&per_machine_results) {
            assert!(b.halted && !b.limit_hit, "candidate must run to completion");
            assert_eq!(
                (b.cycles, b.committed, &b.regs),
                (p.cycles, p.committed, &p.regs),
                "search evaluation paths diverged"
            );
            committed += b.committed;
        }
        let batched_ips = committed as f64 / batched_secs;
        let per_machine_ips = committed as f64 / per_machine_secs;
        let speedup = per_machine_secs / batched_secs;
        let _ = writeln!(
            text,
            "# search throughput ({} candidates x {} targets, {SEARCH_WARMUP} warmup runs):",
            SEARCH_CANDIDATES,
            SEARCH_TARGETS.len(),
        );
        let _ = writeln!(
            text,
            "search-throughput     {:>10.2}M {:>10.2}M {:>8.1}x",
            batched_ips / 1e6,
            per_machine_ips / 1e6,
            speedup,
        );
        let sample = &batched_results[batched_results.len() - 1];
        rows.push(
            Value::object()
                .with("workload", "search-throughput")
                .with(
                    "description",
                    "gadget-search candidate evaluation: one warmed snapshot fanned via run_many (event-driven col) vs fresh machine + full warmup per program",
                )
                .with("dyn_instrs_per_run", committed)
                .with("cycles_per_run", sample.cycles)
                .with("mispredicts_per_run", sample.mispredicts)
                .with("squashed_per_run", sample.squashed_instrs)
                .with("ipc", round3(sample.ipc()))
                .with("event_driven_instrs_per_sec", batched_ips.round())
                .with("reference_instrs_per_sec", per_machine_ips.round())
                .with("speedup", round2(speedup)),
        );
    }
    // Scenario-e2e rows: whole-experiment wall clock, batched trial path
    // (TrialPath::Batched, the default) vs the pre-port per-machine shape.
    // Both columns divide the *per-machine* arm's committed instructions
    // by each arm's wall time — the batched path may structurally skip
    // redundant heavy runs (the timer-axis collapse), so its own commit
    // count would understate the win; with a shared work numerator,
    // `speedup` is the pure wall-clock ratio.
    let _ = writeln!(
        text,
        "# scenario e2e (whole experiment, batched vs per-machine trial path):"
    );
    let _ = writeln!(
        text,
        "# scenario              batched   per-machine  speedup"
    );
    let e2e_row = |text: &mut String,
                   rows: &mut Vec<Value>,
                   name: &str,
                   description: &str,
                   work: u64,
                   batched_secs: f64,
                   per_machine_secs: f64| {
        let batched_ips = work as f64 / batched_secs;
        let per_machine_ips = work as f64 / per_machine_secs;
        let speedup = per_machine_secs / batched_secs;
        let _ = writeln!(
            text,
            "{:<21} {:>10.2}M {:>10.2}M {:>8.2}x",
            name,
            batched_ips / 1e6,
            per_machine_ips / 1e6,
            speedup,
        );
        rows.push(
            Value::object()
                .with("workload", name)
                .with("description", description)
                .with("dyn_instrs_per_run", work)
                .with("event_driven_instrs_per_sec", batched_ips.round())
                .with("reference_instrs_per_sec", per_machine_ips.round())
                .with("speedup", round2(speedup)),
        );
    };
    {
        let start = Instant::now();
        let (bp, _) = timer_mitigations::sweep_sharded_on(
            &E2E_TIMERS,
            &E2E_ROUNDS,
            E2E_TRIALS,
            1,
            1,
            TrialPath::Batched,
        );
        let batched_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let (pp, pc) = timer_mitigations::sweep_sharded_on(
            &E2E_TIMERS,
            &E2E_ROUNDS,
            E2E_TRIALS,
            1,
            1,
            TrialPath::PerMachine,
        );
        let per_machine_secs = start.elapsed().as_secs_f64();
        assert_eq!(bp.len(), pp.len(), "e2e trial paths diverged");
        for (b, p) in bp.iter().zip(&pp) {
            assert!(
                b.timer == p.timer
                    && b.rounds == p.rounds
                    && b.accuracy.to_bits() == p.accuracy.to_bits()
                    && b.trials == p.trials,
                "e2e trial paths diverged on timer_mitigations ({}, {})",
                b.timer,
                b.rounds
            );
        }
        e2e_row(
            &mut text,
            &mut rows,
            "e2e-timer-mitigations",
            "timer_mitigations sweep, batched trial path (shared heavy runs scored under every timer) vs per-machine",
            pc,
            batched_secs,
            per_machine_secs,
        );
    }
    {
        let start = Instant::now();
        let (bp, _) = spectre_eval::resolution_sweep_on(
            E2E_SPECTRE_SECRET,
            &E2E_SPECTRE_RESOLUTIONS,
            E2E_SPECTRE_SEED,
            TrialPath::Batched,
        );
        let batched_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let (pp, pc) = spectre_eval::resolution_sweep_on(
            E2E_SPECTRE_SECRET,
            &E2E_SPECTRE_RESOLUTIONS,
            E2E_SPECTRE_SEED,
            TrialPath::PerMachine,
        );
        let per_machine_secs = start.elapsed().as_secs_f64();
        assert_eq!(bp.len(), pp.len(), "e2e trial paths diverged");
        for (b, p) in bp.iter().zip(&pp) {
            assert!(
                b.recovered == p.recovered
                    && b.accuracy.to_bits() == p.accuracy.to_bits()
                    && b.kbps.to_bits() == p.kbps.to_bits(),
                "e2e trial paths diverged on spectre_eval"
            );
        }
        e2e_row(
            &mut text,
            &mut rows,
            "e2e-spectre-resolutions",
            "SpectreBack leak scored at every timer resolution: one recorded attack replayed per timer vs one attack run per resolution",
            pc,
            batched_secs,
            per_machine_secs,
        );
    }
    let data = Value::object()
        .with("bench", "pipeline-scheduler-throughput")
        .with("unit", "committed instructions per host second")
        .with("scale", ctx.scale.name())
        .with("config", "coffee_lake (224-entry ROB, 6-wide issue)")
        .with(
            "reference",
            "racer_cpu::reference (scan-based seed scheduler); sweep rows: per-machine sweep",
        )
        .with("workloads", Value::Array(rows));
    Ok(ScenarioOutput { data, text })
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Registration for the throughput baseline. The only scenario whose
/// results depend on wall-clock time, hence `deterministic: false`.
pub fn perf_baseline() -> Scenario {
    Scenario {
        name: "perf_baseline",
        title: "perf baseline",
        description: "event-driven vs reference scheduler throughput per workload shape",
        params: vec![
            ParamSpec::int("iters", "loop iterations per workload", 2_000, 12_000),
            ParamSpec::int("reps", "timed executions per workload", 2, 4),
            // Identical under both presets: the sweep metric's timed
            // fraction is points/(warmup+points), so the perf gate's
            // quick re-measurement only compares against a paper-scale
            // baseline if the point count matches.
            ParamSpec::int("sweep_points", "points per sweep-throughput row", 32, 32),
        ],
        seed: 0,
        deterministic: false,
        run,
    }
}
