//! Simulator-throughput baseline: committed instructions per host second
//! for the event-driven scheduler vs. the retained scan-based reference
//! scheduler, across the standard workload suite.
//!
//! The payload (`results`) is exactly the committed `BENCH_pipeline.json`
//! document, so the legacy `perf_baseline` binary can keep refreshing the
//! baseline and `racer-lab perf-check` can diff against it.

use super::header;
use crate::error::LabError;
use crate::params::ParamSpec;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use racer_cpu::workloads::{measure_workload, standard_suite};
use racer_results::Value;
use std::fmt::Write as _;

fn run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let iters = ctx.params.i64("iters");
    let reps = ctx.params.usize("reps");
    let mut text = header("perf baseline", "pipeline scheduler throughput");
    let _ = writeln!(
        text,
        "# pipeline scheduler throughput (committed Minstr/s, higher is better)"
    );
    let _ = writeln!(
        text,
        "# workload            event-driven   reference   speedup   ipc   mispredicts"
    );
    let mut rows = Vec::new();
    for w in &standard_suite(iters, reps) {
        let fast = measure_workload(w, false);
        let reference = measure_workload(w, true);
        assert_eq!(
            (fast.result.cycles, fast.result.committed, &fast.result.regs),
            (
                reference.result.cycles,
                reference.result.committed,
                &reference.result.regs
            ),
            "schedulers diverged on {}",
            w.name
        );
        let speedup = fast.instrs_per_sec / reference.instrs_per_sec;
        let _ = writeln!(
            text,
            "{:<21} {:>10.2}M {:>10.2}M {:>8.1}x {:>6.2} {:>10}",
            w.name,
            fast.instrs_per_sec / 1e6,
            reference.instrs_per_sec / 1e6,
            speedup,
            fast.result.ipc(),
            fast.result.mispredicts,
        );
        rows.push(
            Value::object()
                .with("workload", w.name)
                .with("description", w.description)
                .with("dyn_instrs_per_run", fast.result.committed)
                .with("cycles_per_run", fast.result.cycles)
                .with("mispredicts_per_run", fast.result.mispredicts)
                .with("squashed_per_run", fast.result.squashed_instrs)
                .with("ipc", round3(fast.result.ipc()))
                .with("event_driven_instrs_per_sec", fast.instrs_per_sec.round())
                .with("reference_instrs_per_sec", reference.instrs_per_sec.round())
                .with("speedup", round2(speedup)),
        );
    }
    let data = Value::object()
        .with("bench", "pipeline-scheduler-throughput")
        .with("unit", "committed instructions per host second")
        .with("scale", ctx.scale.name())
        .with("config", "coffee_lake (224-entry ROB, 6-wide issue)")
        .with(
            "reference",
            "racer_cpu::reference (scan-based seed scheduler)",
        )
        .with("workloads", Value::Array(rows));
    Ok(ScenarioOutput { data, text })
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Registration for the throughput baseline. The only scenario whose
/// results depend on wall-clock time, hence `deterministic: false`.
pub fn perf_baseline() -> Scenario {
    Scenario {
        name: "perf_baseline",
        title: "perf baseline",
        description: "event-driven vs reference scheduler throughput per workload shape",
        params: vec![
            ParamSpec::int("iters", "loop iterations per workload", 2_000, 12_000),
            ParamSpec::int("reps", "timed executions per workload", 2, 4),
        ],
        seed: 0,
        deterministic: false,
        run,
    }
}
