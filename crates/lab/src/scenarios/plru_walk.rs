//! Figures 3 & 4: the tree-PLRU magnifier's cache-state walk, step by
//! step — eviction candidate, hit/miss and set contents per access.

use super::header;
use crate::error::LabError;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use racer_mem::{CacheSet, LineAddr, ReplacementKind};
use racer_results::Value;
use std::fmt::Write as _;

/// Labelled 4-way set mirroring the figures' presentation, recording every
/// access as both text and a structured step.
struct Walk {
    set: CacheSet,
    names: Vec<(LineAddr, char)>,
    ways: [char; 4],
    text: String,
    steps: Vec<Value>,
}

impl Walk {
    fn new() -> Self {
        Walk {
            set: CacheSet::new(ReplacementKind::TreePlru.build(4, 0)),
            names: Vec::new(),
            ways: ['-'; 4],
            text: String::new(),
            steps: Vec::new(),
        }
    }

    fn line(&mut self, c: char) -> LineAddr {
        if let Some((l, _)) = self.names.iter().find(|(_, n)| *n == c) {
            return *l;
        }
        let l = LineAddr(100 + self.names.len() as u64);
        self.names.push((l, c));
        l
    }

    fn name(&self, l: LineAddr) -> char {
        self.names
            .iter()
            .find(|(x, _)| *x == l)
            .map(|(_, n)| *n)
            .unwrap_or('?')
    }

    fn set_string(&self) -> String {
        self.ways.iter().collect()
    }

    fn access(&mut self, c: char) {
        let l = self.line(c);
        if self.set.touch(l) {
            let _ = writeln!(
                self.text,
                "access {c}: hit             set=[{}]  EVC={}",
                self.set_string(),
                self.evc()
            );
            self.steps.push(
                Value::object()
                    .with("access", c.to_string())
                    .with("hit", true)
                    .with("set", self.set_string())
                    .with("eviction_candidate", self.evc().to_string()),
            );
        } else {
            let out = self.set.fill(l);
            let evicted = out.evicted.map(|e| self.name(e));
            self.ways[out.way] = c;
            let _ = writeln!(
                self.text,
                "access {c}: MISS -> way {}{}  set=[{}]  EVC={}",
                out.way,
                evicted.map_or("           ".to_string(), |e| format!(" (evicts {e})")),
                self.set_string(),
                self.evc()
            );
            self.steps.push(
                Value::object()
                    .with("access", c.to_string())
                    .with("hit", false)
                    .with("way", out.way)
                    .with("evicted", evicted.map(|e| e.to_string()))
                    .with("set", self.set_string())
                    .with("eviction_candidate", self.evc().to_string()),
            );
        }
    }

    fn evc(&self) -> char {
        self.set
            .eviction_candidate()
            .map(|l| self.name(l))
            .unwrap_or('-')
    }
}

/// One sub-figure: warm-up accesses, then `rounds` repetitions of
/// `pattern`. Returns the structured walk and its text rendering.
fn walk_figure(
    label: &str,
    warmup: &[char],
    pattern: &[char],
    rounds: usize,
    note: &str,
) -> (Value, String) {
    let mut w = Walk::new();
    for &c in warmup {
        w.access(c);
    }
    let warm_steps = std::mem::take(&mut w.steps);
    let mut round_values = Vec::new();
    for round in 0..rounds {
        let _ = writeln!(w.text, "-- round {} --", round + 1);
        for &c in pattern {
            w.access(c);
        }
        round_values.push(Value::Array(std::mem::take(&mut w.steps)));
    }
    let misses_last_round = round_values
        .last()
        .and_then(Value::as_array)
        .map(|steps| {
            steps
                .iter()
                .filter(|s| s.get("hit") == Some(&Value::Bool(false)))
                .count()
        })
        .unwrap_or(0);
    let _ = writeln!(w.text, "({note})");
    let data = Value::object()
        .with("label", label)
        .with(
            "pattern",
            pattern.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        )
        .with("warmup", Value::Array(warm_steps))
        .with("rounds", Value::Array(round_values))
        .with("misses_in_final_round", misses_last_round)
        .with("note", note);
    (data, w.text)
}

fn run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let rounds = ctx.params.usize("rounds");
    let mut text = header(
        "Figures 3 & 4",
        "tree-PLRU magnifier state walks (4-way set)",
    );

    text.push_str("\n-- Figure 3: A present (inserted first); pattern B,C,E,C,D,C --\n");
    let (fig3, t3) = walk_figure(
        "figure3-transmit1",
        &['B', 'C', 'E', 'D', 'A'],
        &['B', 'C', 'E', 'C', 'D', 'C'],
        rounds,
        "A survives forever; 3 misses per round — the transmit-1 state",
    );
    text.push_str(&t3);

    text.push_str("\n-- Figure 4: B touched before A; pattern C,E,C,D,C,B --\n");
    let (fig4, t4) = walk_figure(
        "figure4-transmit0",
        &['B', 'C', 'E', 'D', 'B', 'A'],
        &['C', 'E', 'C', 'D', 'C', 'B'],
        rounds,
        "A is evicted early and the misses stop — the transmit-0 state",
    );
    text.push_str(&t4);

    Ok(ScenarioOutput {
        data: Value::object().with("figure3", fig3).with("figure4", fig4),
        text,
    })
}

/// Registration for the Figures 3–4 state walk.
pub fn fig03_plru_walk() -> Scenario {
    Scenario {
        name: "fig03_plru_walk",
        title: "Figures 3 & 4",
        description: "tree-PLRU magnifier state walks (4-way set)",
        params: vec![crate::params::ParamSpec::int(
            "rounds",
            "pattern repetitions per sub-figure",
            3,
            3,
        )],
        seed: 0,
        deterministic: true,
        run,
    }
}
