//! `smt_contention_eval` — racing-gadget timer quality under SMT port
//! contention (paper §9, "other shared resources").
//!
//! The paper observes that a racing-gadget timer reads *any* contended
//! shared resource — and Ge et al. argue SMT-shared execution ports are
//! exactly the channels software cannot close. This scenario co-schedules
//! the §4/§6.4 racing-gadget timer (a serial divide chain *measured*
//! against a serial add-chain *clock*) with a family of port-pressure
//! contender kernels on the second hardware thread, and measures what the
//! contention does to the timer itself:
//!
//! * **Resolution** (`resolution_cycles_per_tick`): the least-squares
//!   slope of measured-chain duration against the racer's reading — how
//!   many real cycles one clock tick represents. An idle sibling leaves
//!   the add-chain clock ticking once per cycle (the paper's
//!   cycle-accurate racer); a sibling saturating the shared ALU ports
//!   steals issue slots from the clock chain and coarsens every tick.
//! * **Reading slope** (`reading_slope_ticks_per_target`): ticks per unit
//!   of measured work. Divider-unit pressure (`div-hog`) inflates the
//!   measured chain itself — the co-resident-victim observation channel —
//!   while leaving the clock full-rate.
//! * **Monotonicity errors**: adjacent measured lengths whose readings
//!   fail to increase — the gadget-noise figure the paper's repetition
//!   stacks exist to suppress.
//!
//! Contender mixes are ranked by the pressure they put on the *timer's
//! own ports* (the clock chain's ALU issue slots), so the paper preset's
//! resolution column degrades monotonically along the declared ladder.
//! Every run is a fresh, cold, deterministic two-thread machine; the
//! phase axis (`trials`) shifts the racer's dispatch alignment against
//! the contender loop by prepended no-ops.

use crate::error::LabError;
use crate::params::ParamSpec;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use racer_cpu::workloads::{alu_saturate, div_hog, memory_stream, timer_race_phased};
use racer_cpu::{Backend, Cpu, CpuConfig, SmtPolicy};
use racer_isa::Program;
use racer_mem::HierarchyConfig;
use racer_results::Value;
use std::fmt::Write as _;

/// Contender-loop iteration count: sized so every kernel comfortably
/// outlives the longest race (a few hundred cycles) on any mix.
const CONTENDER_ITERS: i64 = 80;

/// One contender mix: name, pressure rank on the timer's ALU ports
/// (higher = more), and the kernel builder.
struct Mix {
    name: &'static str,
    pressure_rank: i64,
    build: fn() -> Program,
}

fn idle_contender() -> Program {
    let mut asm = racer_isa::Asm::new();
    asm.halt();
    asm.assemble().expect("valid program")
}

/// The known contender mixes, in pressure-rank order.
fn mix_table() -> Vec<Mix> {
    vec![
        Mix {
            name: "none",
            pressure_rank: 0,
            build: idle_contender,
        },
        Mix {
            name: "load-stream",
            pressure_rank: 1,
            build: || memory_stream(CONTENDER_ITERS),
        },
        Mix {
            name: "div-hog",
            pressure_rank: 2,
            build: || div_hog(CONTENDER_ITERS),
        },
        Mix {
            name: "alu-1",
            pressure_rank: 3,
            build: || alu_saturate(CONTENDER_ITERS, 1),
        },
        Mix {
            name: "alu-2",
            pressure_rank: 4,
            build: || alu_saturate(CONTENDER_ITERS, 2),
        },
        Mix {
            name: "alu-sat",
            pressure_rank: 5,
            build: || alu_saturate(CONTENDER_ITERS, 8),
        },
    ]
}

fn find_mix(name: &str) -> Mix {
    mix_table()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| {
            let known: Vec<&str> = mix_table().iter().map(|m| m.name).collect();
            panic!(
                "unknown contender mix {name:?}; known: {}",
                known.join(", ")
            )
        })
}

fn parse_policy(name: &str) -> SmtPolicy {
    match name {
        "round-robin" => SmtPolicy::RoundRobin,
        "icount" => SmtPolicy::Icount,
        other => panic!("unknown SMT policy {other:?}; known: round-robin, icount"),
    }
}

/// One race on a fresh two-thread machine: does the clock chain of length
/// `clock_adds` lose (complete strictly after the measured chain), and
/// when did the measured chain complete?
fn race(
    policy: SmtPolicy,
    contender: &Program,
    measured_divs: usize,
    clock_adds: usize,
    phase: usize,
) -> (bool, u64) {
    let cfg = CpuConfig::coffee_lake()
        .with_threads(2)
        .with_smt_policy(policy)
        .with_trace();
    let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let r = timer_race_phased(measured_divs, clock_adds, phase);
    let results = cpu.run(&[&r.prog, contender], Backend::EventDriven);
    assert!(
        results[0].halted && results[1].halted,
        "race and contender must run to completion"
    );
    let (measured_done, clock_done) = r.tail_completions(&results[0]);
    (clock_done > measured_done, measured_done)
}

/// The racer's reading of a measured chain of `t` divides: the smallest
/// clock-chain length that loses the race (binary search — the race
/// outcome is monotone in the clock length up to gadget noise, which is
/// precisely what the monotonicity-error metric quantifies). Returns
/// `(reading, measured-chain duration at that reading)`.
fn read_timer(
    policy: SmtPolicy,
    contender: &Program,
    t: usize,
    clock_max: usize,
    phase: usize,
) -> (usize, u64) {
    // Every probe returns the measured-chain duration alongside the race
    // outcome; tracking the duration of the probe that ends up as the
    // reading saves re-simulating it (each probe is a full cold
    // two-thread run).
    let probe = |r: usize| race(policy, contender, t, r, phase);
    let (lose_zero, duration_zero) = probe(0);
    if lose_zero {
        return (0, duration_zero);
    }
    let (lose_max, duration_max) = probe(clock_max);
    if !lose_max {
        // Saturated: the window/clock cannot count this far.
        return (clock_max, duration_max);
    }
    let (mut lo, mut hi) = (0usize, clock_max);
    let mut duration_hi = duration_max;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (lost, duration) = probe(mid);
        if lost {
            hi = mid;
            duration_hi = duration;
        } else {
            lo = mid;
        }
    }
    (hi, duration_hi)
}

/// Lower median of a non-empty slice.
fn median(xs: &[u64]) -> u64 {
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

/// Least-squares slope of `y` against `x` (0 when x has no spread).
fn ls_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.is_empty() {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    if sxx == 0.0 {
        return 0.0;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    sxy / sxx
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

/// Everything measured for one contender mix.
struct MixResult {
    name: &'static str,
    pressure_rank: i64,
    resolution_cycles_per_tick: f64,
    reading_slope_ticks_per_target: f64,
    monotonicity_error_rate: f64,
    /// Per-target lower-median reading across phase trials.
    median_readings: Vec<(usize, u64)>,
    points: Vec<Value>,
}

fn evaluate_mix(
    mix: &Mix,
    policy: SmtPolicy,
    targets: &[usize],
    clock_max: usize,
    trials: usize,
) -> MixResult {
    let contender = (mix.build)();
    let mut points = Vec::new();
    let mut duration_vs_reading: Vec<(f64, f64)> = Vec::new();
    let mut reading_vs_target: Vec<(f64, f64)> = Vec::new();
    let mut per_target: Vec<Vec<u64>> = vec![Vec::new(); targets.len()];
    let mut errors = 0usize;
    let mut pairs = 0usize;
    for phase in 0..trials {
        let mut prev: Option<usize> = None;
        for (ti, &t) in targets.iter().enumerate() {
            let (reading, duration) = read_timer(policy, &contender, t, clock_max, phase);
            duration_vs_reading.push((reading as f64, duration as f64));
            reading_vs_target.push((t as f64, reading as f64));
            per_target[ti].push(reading as u64);
            if let Some(p) = prev {
                pairs += 1;
                // A longer measured chain must read higher; a flat or
                // inverted reading is a gadget monotonicity error.
                if reading <= p {
                    errors += 1;
                }
            }
            prev = Some(reading);
            points.push(
                Value::object()
                    .with("target_divs", t)
                    .with("phase", phase)
                    .with("reading_ticks", reading)
                    .with("duration_cycles", duration),
            );
        }
    }
    MixResult {
        name: mix.name,
        pressure_rank: mix.pressure_rank,
        resolution_cycles_per_tick: round4(ls_slope(&duration_vs_reading)),
        reading_slope_ticks_per_target: round4(ls_slope(&reading_vs_target)),
        monotonicity_error_rate: round4(if pairs == 0 {
            0.0
        } else {
            errors as f64 / pairs as f64
        }),
        median_readings: targets
            .iter()
            .zip(&per_target)
            .map(|(&t, rs)| (t, median(rs)))
            .collect(),
        points,
    }
}

fn run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let mixes = ctx.params.str_list("mixes");
    let targets = ctx.params.usize_list("targets");
    let clock_max = ctx.params.usize("clock_max");
    let trials = ctx.params.usize("trials");
    let policy = parse_policy(ctx.params.str("policy"));

    let specs: Vec<Mix> = mixes.iter().map(|m| find_mix(m)).collect();
    // Independent deterministic simulations: fan the mixes out across
    // host cores (order-preserving).
    let results = racer_cpu::batch::par_map(&specs, |mix| {
        evaluate_mix(mix, policy, &targets, clock_max, trials)
    });

    let mut text = super::header(
        "§9 SMT",
        "racing-gadget timer resolution under SMT port contention",
    );
    let _ = writeln!(
        text,
        "# policy: {policy}   targets: {targets:?} divs   clock_max: {clock_max} adds   trials: {trials}"
    );
    let _ = writeln!(
        text,
        "# mix          rank  cycles/tick  ticks/div  mono-err  median readings"
    );
    for r in &results {
        let readings: Vec<String> = r
            .median_readings
            .iter()
            .map(|(t, m)| format!("{t}:{m}"))
            .collect();
        let _ = writeln!(
            text,
            "{:<13} {:>4} {:>12.3} {:>10.2} {:>9.2}  {}",
            r.name,
            r.pressure_rank,
            r.resolution_cycles_per_tick,
            r.reading_slope_ticks_per_target,
            r.monotonicity_error_rate,
            readings.join(" ")
        );
    }
    let _ = writeln!(
        text,
        "# paper §9: the racer reads any contended shared resource; pressure on"
    );
    let _ = writeln!(
        text,
        "# the clock chain's ALU ports coarsens each tick (resolution degrades"
    );
    let _ = writeln!(
        text,
        "# monotonically down the ladder), while divider pressure inflates the"
    );
    let _ = writeln!(
        text,
        "# measured chain itself (ticks/div rises) — the co-residence channel."
    );

    let data = Value::object()
        .with("policy", policy.to_string())
        .with("clock_max", clock_max)
        .with(
            "mixes",
            Value::Array(
                results
                    .into_iter()
                    .map(|r| {
                        Value::object()
                            .with("mix", r.name)
                            .with("pressure_rank", r.pressure_rank)
                            .with("resolution_cycles_per_tick", r.resolution_cycles_per_tick)
                            .with(
                                "reading_slope_ticks_per_target",
                                r.reading_slope_ticks_per_target,
                            )
                            .with("monotonicity_error_rate", r.monotonicity_error_rate)
                            .with(
                                "median_readings",
                                Value::Array(
                                    r.median_readings
                                        .iter()
                                        .map(|&(t, m)| {
                                            Value::object()
                                                .with("target_divs", t)
                                                .with("reading_ticks", m)
                                        })
                                        .collect(),
                                ),
                            )
                            .with("points", Value::Array(r.points))
                    })
                    .collect(),
            ),
        );
    Ok(ScenarioOutput { data, text })
}

/// Registration for the SMT port-contention evaluation.
pub fn smt_contention_eval() -> Scenario {
    Scenario {
        name: "smt_contention_eval",
        title: "§9 SMT",
        description: "racing-gadget timer resolution and monotonicity under SMT port contention",
        params: vec![
            ParamSpec::str_list(
                "mixes",
                "contender mixes, pressure-rank order",
                &["none", "div-hog", "alu-sat"],
                &[
                    "none",
                    "load-stream",
                    "div-hog",
                    "alu-1",
                    "alu-2",
                    "alu-sat",
                ],
            ),
            ParamSpec::int_list(
                "targets",
                "measured divide-chain lengths",
                &[0, 1, 2],
                &[0, 1, 2, 3, 4, 6],
            ),
            ParamSpec::int(
                "clock_max",
                "largest clock chain the reading search probes",
                64,
                112,
            ),
            ParamSpec::int("trials", "contender phase offsets per cell", 2, 4),
            ParamSpec::str(
                "policy",
                "SMT issue arbitration (round-robin | icount)",
                "round-robin",
                "round-robin",
            ),
        ],
        seed: 0,
        deterministic: true,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_eval(mix_name: &str, targets: &[usize], trials: usize) -> MixResult {
        evaluate_mix(
            &find_mix(mix_name),
            SmtPolicy::RoundRobin,
            targets,
            64,
            trials,
        )
    }

    #[test]
    fn idle_sibling_keeps_cycle_resolution() {
        let r = quick_eval("none", &[0, 1, 2, 3], 1);
        // An uncontended add-chain clock ticks once per cycle.
        assert!(
            (r.resolution_cycles_per_tick - 1.0).abs() < 0.2,
            "idle-sibling resolution should be ~1 cycle/tick, got {}",
            r.resolution_cycles_per_tick
        );
        assert_eq!(r.monotonicity_error_rate, 0.0);
    }

    #[test]
    fn resolution_degrades_monotonically_with_alu_pressure() {
        // The acceptance property, at reduced scale: walking up the
        // declared pressure ladder never improves resolution (tolerance
        // for flat steps), and full saturation costs at least half a
        // cycle per tick over the idle sibling.
        let ladder = ["none", "div-hog", "alu-2", "alu-sat"];
        let res: Vec<f64> = ladder
            .iter()
            .map(|m| quick_eval(m, &[0, 1, 2, 3], 1).resolution_cycles_per_tick)
            .collect();
        for w in res.windows(2) {
            assert!(
                w[1] >= w[0] - 0.05,
                "resolution must not improve with pressure: {ladder:?} -> {res:?}"
            );
        }
        assert!(
            res[res.len() - 1] > res[0] + 0.5,
            "ALU saturation must coarsen the timer: {res:?}"
        );
    }

    #[test]
    fn div_hog_inflates_the_measured_chain() {
        let idle = quick_eval("none", &[1, 2, 3], 1);
        let hog = quick_eval("div-hog", &[1, 2, 3], 1);
        assert!(
            hog.reading_slope_ticks_per_target > idle.reading_slope_ticks_per_target + 1.0,
            "divider contention must inflate ticks/div: idle {} vs hog {}",
            idle.reading_slope_ticks_per_target,
            hog.reading_slope_ticks_per_target
        );
    }

    #[test]
    #[should_panic(expected = "unknown contender mix")]
    fn unknown_mix_is_rejected() {
        find_mix("cryptominer");
    }

    #[test]
    fn policies_parse() {
        assert_eq!(parse_policy("round-robin"), SmtPolicy::RoundRobin);
        assert_eq!(parse_policy("icount"), SmtPolicy::Icount);
    }

    #[test]
    fn helpers_are_sane() {
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 2, 3]), 2, "lower median on even length");
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((ls_slope(&pts) - 2.0).abs() < 1e-9);
        assert_eq!(ls_slope(&[(1.0, 5.0)]), 0.0);
    }
}
