//! Table scenarios: the §7.2 granularity summary and the §6.3.3 SEQ/PAR
//! eviction-probability grid.

use super::header;
use crate::error::LabError;
use crate::params::ParamSpec;
use crate::registry::{RunContext, Scenario, ScenarioOutput};
use hacky_racers::experiments::{granularity, par_seq};
use racer_results::Value;
use std::fmt::Write as _;

/// Both table scenarios.
pub fn all() -> Vec<Scenario> {
    vec![table_granularity(), table_par_seq()]
}

fn granularity_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let mut series = granularity::figure8(
        ctx.params.usize("fig8_max_target"),
        ctx.params.usize("fig8_step"),
        ctx.params.usize("fig8_max_ref"),
    );
    series.extend(granularity::figure9(
        ctx.params.usize("fig9_max_target"),
        ctx.params.usize("fig9_step"),
        ctx.params.usize("fig9_max_ref"),
    ));
    let table = granularity::granularity_table(&series);
    let mut text = header("§7.2 table", "racing-gadget granularity summary");
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "# paper: granularity 1-3 ops (ADD ref), 2-4 ops (MUL ref);"
    );
    let _ = writeln!(
        text,
        "# reach limited by the instruction window (~54 ADD-cycles / ~140 via MUL)."
    );
    Ok(ScenarioOutput {
        data: table.to_value(),
        text,
    })
}

fn table_granularity() -> Scenario {
    Scenario {
        name: "table_granularity",
        title: "§7.2 table",
        description: "slope, granularity and reach per (reference, target) operation pair",
        params: vec![
            ParamSpec::int("fig8_max_target", "Figure 8 largest target", 16, 35),
            ParamSpec::int("fig8_step", "Figure 8 target stride", 4, 1),
            ParamSpec::int("fig8_max_ref", "Figure 8 reference cap", 80, 80),
            ParamSpec::int("fig9_max_target", "Figure 9 largest target", 40, 145),
            ParamSpec::int("fig9_step", "Figure 9 target stride", 8, 4),
            ParamSpec::int("fig9_max_ref", "Figure 9 reference cap", 60, 60),
        ],
        seed: 0,
        deterministic: true,
        run: granularity_run,
    }
}

fn par_seq_run(ctx: &RunContext) -> Result<ScenarioOutput, LabError> {
    let (ways, trials) = (ctx.params.usize("ways"), ctx.params.usize("trials"));
    let points = par_seq::par_seq_table(ways, trials);
    let mut text = header(
        "§6.3.3 table",
        "SEQ/PAR eviction probability (8-way random set)",
    );
    let _ = writeln!(text, "{}", par_seq::render(&points));
    let _ = writeln!(
        text,
        "# paper: SEQ=6, PAR=5 gives >=1 miss with ~96% probability."
    );
    Ok(ScenarioOutput {
        data: Value::object().with("points", par_seq::to_value(&points)),
        text,
    })
}

fn table_par_seq() -> Scenario {
    Scenario {
        name: "table_par_seq",
        title: "§6.3.3 table",
        description: "probability that filling PAR_i evicts a SEQ_i member, per size pair",
        params: vec![
            ParamSpec::int("ways", "set associativity", 8, 8),
            ParamSpec::int("trials", "Monte-Carlo trials per cell", 2_000, 50_000),
        ],
        seed: 0,
        deterministic: true,
        run: par_seq_run,
    }
}
