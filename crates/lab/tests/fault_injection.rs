//! Fault-injection integration suite: drives the built `racer-lab`
//! binary under `RACER_FAULT_PLAN` (see `racer_lab::fault`) and asserts
//! the pipeline's three robustness invariants end to end:
//!
//! 1. **No corrupt JSON is ever written** — whatever fault fires, every
//!    `*.json` in an output or checkpoint directory strictly parses.
//! 2. **Failures are labelled, not fatal to siblings** — a panicking or
//!    timed-out scenario becomes a `status: "failed"` cell with a typed
//!    `error`, sibling reports are byte-identical to a fault-free run,
//!    and the process exits with the first failure's documented code.
//! 3. **Resume converges** — a run SIGKILL'd (abort) mid-sweep and then
//!    re-run against its checkpoint journal produces outputs
//!    byte-identical to a never-faulted run.

use racer_results::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_racer-lab")
}

fn tmp(stem: &str) -> PathBuf {
    std::env::temp_dir().join(format!("racer-lab-fault-{stem}-{}", std::process::id()))
}

/// The two fast scenarios the suite sweeps: parameterless and
/// deterministic, so fault-free outputs are byte-stable.
const SCENARIOS: [&str; 2] = ["countermeasures_eval", "detection_eval"];

/// Spawn `racer-lab run` on both scenarios with an optional fault plan,
/// checkpoint dir and extra flags.
fn run_lab(out: &Path, plan: Option<&str>, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(bin());
    cmd.arg("run")
        .args(SCENARIOS)
        .args(["--quick", "--quiet", "--out"])
        .arg(out)
        .args(extra)
        .env_remove("RACER_FAULT_PLAN");
    if let Some(plan) = plan {
        cmd.env("RACER_FAULT_PLAN", plan);
    }
    cmd.output().expect("spawn racer-lab run")
}

/// Every `*.json` under `dir` (non-recursive), sorted, with content —
/// asserting along the way that each one strictly parses. This is
/// invariant 1; it runs after every faulted command in the suite.
fn parsed_json_files(dir: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if !dir.exists() {
        return out;
    }
    for entry in std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(Result::ok)
    {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "json") && path.is_file() {
            let text = std::fs::read_to_string(&path).expect("readable");
            assert!(
                Value::parse(&text).is_ok(),
                "corrupt JSON left at {}: {text:?}",
                path.display()
            );
            out.push((
                path.file_name().unwrap().to_string_lossy().into_owned(),
                text,
            ));
        }
    }
    out.sort();
    out
}

#[test]
fn injected_panic_becomes_a_labelled_failed_cell_and_spares_siblings() {
    let root = tmp("panic");
    let golden = root.join("golden");
    assert!(run_lab(&golden, None, &[]).status.success());

    let out_dir = root.join("out");
    let out = run_lab(&out_dir, Some("panic@scenario:countermeasures_eval"), &[]);
    assert_eq!(
        out.status.code(),
        Some(6),
        "a panicking trial must exit with the scenario-panic code: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("countermeasures_eval: failed"),
        "the failure must be noted on stderr"
    );

    let files = parsed_json_files(&out_dir);
    assert_eq!(files.len(), 2, "both cells are on disk, one failed");
    let cell =
        Value::parse(&std::fs::read_to_string(out_dir.join("countermeasures_eval.json")).unwrap())
            .unwrap();
    assert_eq!(cell.get("status").and_then(Value::as_str), Some("failed"));
    let err = cell.get("error").expect("failed cell carries an error");
    assert_eq!(
        err.get("kind").and_then(Value::as_str),
        Some("scenario-panic")
    );
    assert!(
        err.get("message")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("injected panic at scenario:countermeasures_eval")),
        "the panic payload must be recorded"
    );
    assert!(
        matches!(cell.get("results"), Some(Value::Null)),
        "a failed cell has null results"
    );

    // The sibling that did not fault is byte-identical to fault-free.
    let sibling = |dir: &Path| std::fs::read_to_string(dir.join("detection_eval.json")).unwrap();
    assert_eq!(
        sibling(&out_dir),
        sibling(&golden),
        "an isolated failure must not perturb sibling reports"
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn injected_write_faults_never_touch_the_destination() {
    let root = tmp("write");
    for (plan, label) in [
        ("io@write:countermeasures_eval.json", "io"),
        ("trunc@write:countermeasures_eval.json", "trunc"),
    ] {
        let out_dir = root.join(label);
        let out = run_lab(&out_dir, Some(plan), &[]);
        assert_eq!(
            out.status.code(),
            Some(3),
            "a failed result write is an IO error ({label}): {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out_dir.join("countermeasures_eval.json").exists(),
            "the destination must never exist after a failed write ({label})"
        );
        // Whatever did land (the sibling may have been written first, and
        // trunc leaves a .tmp orphan that the .json scan ignores) parses.
        parsed_json_files(&out_dir);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn injected_stall_trips_the_timeout_and_is_recorded() {
    let root = tmp("timeout");
    let out_dir = root.join("out");
    let out = run_lab(
        &out_dir,
        Some("sleep@scenario:countermeasures_eval=30000"),
        &["--timeout-secs", "1"],
    );
    assert_eq!(
        out.status.code(),
        Some(7),
        "a stalled trial must exit with the timeout code: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let cell =
        Value::parse(&std::fs::read_to_string(out_dir.join("countermeasures_eval.json")).unwrap())
            .unwrap();
    assert_eq!(cell.get("status").and_then(Value::as_str), Some("failed"));
    assert_eq!(
        cell.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("timeout")
    );
    // The sibling still completed despite the stalled trial.
    assert!(out_dir.join("detection_eval.json").exists());
    parsed_json_files(&out_dir);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn kill_mid_run_then_resume_converges_to_the_fault_free_outputs() {
    let root = tmp("kill-resume");
    let golden = root.join("golden");
    assert!(run_lab(&golden, None, &[]).status.success());
    let golden_files = parsed_json_files(&golden);
    assert_eq!(golden_files.len(), 2);

    // Abort the process at the instant one scenario's journal record is
    // about to be written: the harshest interior crash point — result
    // files have not been written yet, and the sibling's record may or
    // may not have landed.
    let out_dir = root.join("out");
    let ckpt = root.join("ckpt");
    let killed = run_lab(
        &out_dir,
        Some("kill@checkpoint:countermeasures_eval"),
        &["--checkpoint", ckpt.to_str().unwrap()],
    );
    assert!(
        !killed.status.success(),
        "the killed run must not report success"
    );
    assert!(
        String::from_utf8_lossy(&killed.stderr).contains("kill at checkpoint:countermeasures_eval"),
        "the abort site is announced for debuggability"
    );
    // Invariant 1 under the kill: journal and output dirs hold only
    // complete JSON (atomic writes — a record is whole or absent).
    parsed_json_files(&ckpt);
    parsed_json_files(&out_dir);

    // Resume: same command, no faults. Journaled units replay, the
    // killed unit re-runs, and the outputs converge byte-for-byte.
    let resumed = run_lab(&out_dir, None, &["--checkpoint", ckpt.to_str().unwrap()]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        parsed_json_files(&out_dir),
        golden_files,
        "a killed-and-resumed sweep must produce the fault-free bytes"
    );

    // A third run is a pure replay (everything journaled now).
    let replay = run_lab(&out_dir, None, &["--checkpoint", ckpt.to_str().unwrap()]);
    assert!(replay.status.success());
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert_eq!(
        stdout.matches("resumed").count(),
        2,
        "every unit replays from the journal: {stdout}"
    );
    assert_eq!(parsed_json_files(&out_dir), golden_files);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn resuming_over_a_corrupted_journal_is_a_conflict() {
    let root = tmp("conflict");
    let ckpt = root.join("ckpt");
    let out_dir = root.join("out");
    assert!(
        run_lab(&out_dir, None, &["--checkpoint", ckpt.to_str().unwrap()])
            .status
            .success()
    );
    // Clobber one journal record (a state the atomic-write protocol can
    // never produce — only external interference can). The resume must
    // refuse with the documented conflict code rather than trust it.
    let record = std::fs::read_dir(&ckpt)
        .expect("journal dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("at least one journal record");
    std::fs::write(&record, "{ truncated mid-write").expect("clobber record");
    let out = run_lab(&out_dir, None, &["--checkpoint", ckpt.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(8),
        "an unreadable journal record must exit with the conflict code: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("checkpoint conflict"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn a_partial_checkpoint_merges_into_a_valid_report_with_lineage() {
    let root = tmp("ckpt-merge");
    let ckpt = root.join("ckpt");
    let out_dir = root.join("out");
    // Journal one completed unit, then kill before the second lands.
    let killed = run_lab(
        &out_dir,
        Some("kill@checkpoint:detection_eval"),
        &["--checkpoint", ckpt.to_str().unwrap()],
    );
    assert!(!killed.status.success());
    let records = parsed_json_files(&ckpt);
    if records.is_empty() {
        // Parallel scheduling may abort before any record lands; the
        // merge-of-nothing contract is covered by unit tests.
        std::fs::remove_dir_all(&root).ok();
        return;
    }

    let merged = root.join("merged.json");
    let out = Command::new(bin())
        .arg("merge")
        .arg(&merged)
        .arg("--from-checkpoint")
        .arg(&ckpt)
        .env_remove("RACER_FAULT_PLAN")
        .output()
        .expect("spawn racer-lab merge");
    assert!(
        out.status.success(),
        "merge --from-checkpoint failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Value::parse(&std::fs::read_to_string(&merged).unwrap())
        .expect("merged report parses strictly");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("racer-lab/v1")
    );
    let resumed = doc
        .get("provenance")
        .and_then(|p| p.get("resumed"))
        .expect("merged report records resumed lineage");
    assert!(resumed
        .get("checkpoint")
        .and_then(Value::as_str)
        .is_some_and(|c| c.contains("ckpt")));
    std::fs::remove_dir_all(&root).ok();
}
