//! Kill-and-resume determinism for the gadget search: a search killed
//! mid-run via `RACER_FAULT_PLAN` and re-invoked against its
//! per-generation checkpoint journal converges byte-for-byte with an
//! uninterrupted run.
//!
//! The search journals its complete state after every generation at
//! fault site `checkpoint:gadget_search_eval:gen<k>`, so
//! `kill@checkpoint:gadget_search_eval:gen1` aborts the process while
//! generation 1's record is being written — generation 0 is already on
//! disk, generations 1+ are lost. The resumed run must reload generation
//! 0's state (rng position included) and recompute the rest to exactly
//! the fault-free bytes.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_racer-lab")
}

fn tmp(stem: &str) -> PathBuf {
    std::env::temp_dir().join(format!("racer-lab-gsearch-{stem}-{}", std::process::id()))
}

/// Tiny debug-build-friendly search: 3 generations × 8 candidates.
const OVERRIDES: [&str; 8] = [
    "--set",
    "generations=3",
    "--set",
    "population=8",
    "--set",
    "targets=0,1,2",
    "--set",
    "clock_len=48",
];

fn run_search(out: &Path, ckpt: &Path, plan: Option<&str>) -> std::process::Output {
    let mut cmd = Command::new(bin());
    cmd.arg("run")
        .arg("gadget_search_eval")
        .args(["--quick", "--out"])
        .arg(out)
        .args(OVERRIDES)
        .arg("--set")
        .arg(format!("checkpoint_dir={}", ckpt.display()))
        .env_remove("RACER_FAULT_PLAN");
    if let Some(plan) = plan {
        cmd.env("RACER_FAULT_PLAN", plan);
    }
    cmd.output().expect("spawn racer-lab run")
}

fn report(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("gadget_search_eval.json")).expect("report exists")
}

#[test]
fn killed_search_resumes_byte_identical_to_an_uninterrupted_run() {
    let root = tmp("kill-resume");
    let _ = std::fs::remove_dir_all(&root);
    let golden_out = root.join("golden");
    let out = root.join("out");
    let ckpt = root.join("ckpt");

    // Fault-free golden run. It must use the same journal path as the
    // killed run — the resolved `checkpoint_dir` parameter is part of
    // the report's config — so its journal is wiped before the faulted
    // run starts from scratch.
    let status = run_search(&golden_out, &ckpt, None);
    assert!(status.status.success(), "golden run failed: {status:?}");
    let golden = report(&golden_out);
    std::fs::remove_dir_all(&ckpt).expect("discard the golden journal");

    // Killed run: abort while journaling generation 1 (generation 0 is
    // already committed to the journal).
    let killed = run_search(&out, &ckpt, Some("kill@checkpoint:gadget_search_eval:gen1"));
    assert!(!killed.status.success(), "the kill plan must abort the run");
    let stderr = String::from_utf8_lossy(&killed.stderr);
    assert!(
        stderr.contains("kill at checkpoint:gadget_search_eval:gen1"),
        "kill site must be announced: {stderr}"
    );
    assert!(ckpt
        .join(
            std::fs::read_dir(&ckpt)
                .expect("journal dir exists")
                .filter_map(Result::ok)
                .find(|e| e
                    .file_name()
                    .to_string_lossy()
                    .starts_with("gadget_search_eval:gen0"))
                .expect("generation 0 must be journaled before the kill")
                .file_name()
        )
        .is_file());

    // Resume: same command, no plan. Must converge to the golden bytes.
    let resumed = run_search(&out, &ckpt, None);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("resumed from checkpoint generation 0"),
        "resume must pick up the journaled generation: {stdout}"
    );
    assert_eq!(
        report(&out),
        golden,
        "resumed report diverges from fault-free bytes"
    );

    // A third run over the now-complete journal is pure replay — still
    // byte-identical (the final generation's record carries the whole
    // finished state).
    let replay = run_search(&out, &ckpt, None);
    assert!(replay.status.success());
    assert_eq!(report(&out), golden);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn checkpoint_free_runs_are_byte_identical_across_invocations() {
    let root = tmp("repeat");
    let _ = std::fs::remove_dir_all(&root);
    let a = root.join("a");
    let b = root.join("b");
    let mut outputs = Vec::new();
    for dir in [&a, &b] {
        let mut cmd = Command::new(bin());
        cmd.arg("run")
            .arg("gadget_search_eval")
            .args(["--quick", "--quiet", "--out"])
            .arg(dir)
            .args(OVERRIDES)
            .env_remove("RACER_FAULT_PLAN");
        let out = cmd.output().expect("spawn racer-lab run");
        assert!(out.status.success(), "run failed: {out:?}");
        outputs.push(report(dir));
    }
    assert_eq!(outputs[0], outputs[1]);
    let _ = std::fs::remove_dir_all(&root);
}
