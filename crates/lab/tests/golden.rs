//! Golden and determinism guards for the experiment runner.
//!
//! Three layers:
//!
//! 1. **Determinism sweep** — every scenario flagged `deterministic` runs
//!    twice (at quick scale, with heavy axes shrunk further so the debug
//!    test build stays fast) and must produce byte-identical reports.
//! 2. **Committed snapshots** — the two purely structural scenarios
//!    (`countermeasures_eval`, `fig03_plru_walk`) are additionally diffed
//!    against checked-in `tests/golden/*.results.json` files: their
//!    payloads are machine-independent, so any drift is a behavior change.
//! 3. **CLI round trip** — the built `racer-lab` binary runs the same
//!    scenario twice into temp dirs; the written files must match byte for
//!    byte and parse as valid JSON.

use racer_lab::{registry, run_scenario, RunOptions, Scale};
use racer_results::Value;
use std::path::PathBuf;
use std::process::Command;

/// Shrink the expensive sweep axes so the whole determinism sweep stays in
/// test-suite budget even in debug builds. Every override still exercises
/// the same code paths as the quick preset.
fn tiny_overrides(name: &str) -> Vec<(String, String)> {
    let kv = |pairs: &[(&str, &str)]| {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    };
    match name {
        "fig07_repetition" => kv(&[("iterations", "8")]),
        "fig08_granularity_add" => kv(&[("max_target", "8")]),
        "fig09_granularity_mul" => kv(&[("max_target", "16")]),
        "fig10_reorder_distribution" => kv(&[("trials", "2"), ("rounds", "120")]),
        "fig11_arbitrary_replacement" => kv(&[("points", "2,4")]),
        "fig12_arithmetic" => kv(&[("points", "10,20"), ("interrupt_cycles", "4000")]),
        "table_granularity" => kv(&[("fig8_max_target", "8"), ("fig9_max_target", "16")]),
        "table_par_seq" => kv(&[("trials", "200")]),
        "eviction_set_eval" => kv(&[("trials", "1"), ("pool_pages", "24")]),
        "noise_sensitivity_eval" => kv(&[("jitter_levels", "0,60")]),
        "timer_mitigations_eval" => {
            kv(&[("timers", "5us,1ms"), ("rounds", "500"), ("trials", "1")])
        }
        "window_ablation_eval" => kv(&[("rs_sizes", "32"), ("max_probe", "80")]),
        "spectre_back_eval" => kv(&[("secret", "OK")]),
        "smt_contention_eval" => kv(&[
            ("mixes", "none,alu-sat"),
            ("targets", "0,1"),
            ("trials", "1"),
            ("clock_max", "48"),
        ]),
        "gadget_search_eval" => kv(&[
            ("generations", "2"),
            ("population", "12"),
            ("targets", "0,1,2"),
            ("clock_len", "48"),
        ]),
        _ => Vec::new(),
    }
}

#[test]
fn every_deterministic_scenario_is_byte_identical_across_runs() {
    let scenarios: Vec<_> = registry().into_iter().filter(|s| s.deterministic).collect();
    assert!(
        scenarios.len() >= 16,
        "expected >= 16 deterministic scenarios"
    );
    // Independent scenario pairs: fan the sweep out across host cores.
    let renders = racer_cpu::batch::par_map(&scenarios, |sc| {
        let opts = RunOptions {
            scale: Scale::Quick,
            overrides: tiny_overrides(sc.name),
            seed: None,
            timeout_secs: None,
        };
        let a = run_scenario(sc, &opts).expect("first run");
        let b = run_scenario(sc, &opts).expect("second run");
        (sc.name, a.json.to_pretty(), b.json.to_pretty())
    });
    for (name, a, b) in renders {
        assert!(!a.is_empty());
        assert_eq!(a, b, "{name} report changed between identical runs");
        let parsed = Value::parse(&a).unwrap_or_else(|e| panic!("{name} wrote invalid JSON: {e}"));
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("racer-lab/v1"),
            "{name} lost the report envelope"
        );
    }
}

/// The perf baseline is the one intentionally non-deterministic scenario
/// (it measures wall-clock throughput); make sure nobody quietly flips
/// the flag and breaks the CI diffing assumption.
#[test]
fn only_the_perf_baseline_is_nondeterministic() {
    let nondet: Vec<&str> = registry()
        .iter()
        .filter(|s| !s.deterministic)
        .map(|s| s.name)
        .collect();
    assert_eq!(nondet, ["perf_baseline"]);
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.results.json"))
}

/// Structural scenarios (no timing values in the payload) must match the
/// committed snapshot exactly. After confirming a behavior change is
/// intended, regenerate with `UPDATE_GOLDEN=1 cargo test -p racer-lab`.
fn assert_matches_snapshot(name: &str) {
    assert_matches_snapshot_with(name, Vec::new());
}

/// [`assert_matches_snapshot`] at explicit parameter overrides (used to
/// shrink heavy sweep axes so the snapshot runs stay in debug-test
/// budget; the overrides still exercise the quick-preset code paths).
fn assert_matches_snapshot_with(name: &str, overrides: Vec<(String, String)>) {
    let sc = racer_lab::find(name).expect("registered");
    let opts = RunOptions {
        overrides,
        ..RunOptions::quick()
    };
    let report = run_scenario(&sc, &opts).expect("runs");
    let results = report.json.get("results").expect("has results").to_pretty();
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &results).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot for {name}: {e}"));
    assert_eq!(
        results, expected,
        "{name} payload drifted from tests/golden/{name}.results.json"
    );
}

#[test]
fn countermeasure_matrix_matches_committed_snapshot() {
    assert_matches_snapshot("countermeasures_eval");
}

#[test]
fn plru_walk_matches_committed_snapshot() {
    assert_matches_snapshot("fig03_plru_walk");
}

/// The SMT contention sweep is a pure function of the deterministic
/// two-thread simulator — no wall-clock, no RNG — so its quick-preset
/// payload is machine-independent and snapshot-pinned like the other
/// structural scenarios.
#[test]
fn smt_contention_eval_matches_committed_snapshot() {
    assert_matches_snapshot("smt_contention_eval");
}

/// The gadget search is seeded and runs entirely inside the
/// deterministic simulator, so its payload — archive, per-generation
/// logs, discovered templates and fitness — is machine-independent and
/// pins the whole template → lower → evaluate → breed loop at once.
/// Shrunk axes keep the debug snapshot run fast; the shipped-gadget
/// fitness numbers are additionally pinned at full config by
/// `crates/core/tests/gadget_search_determinism.rs`.
#[test]
fn gadget_search_eval_matches_committed_snapshot() {
    assert_matches_snapshot_with("gadget_search_eval", tiny_overrides("gadget_search_eval"));
}

/// Every scenario whose trial fan-out is routed through the batch engine
/// (fork-from-snapshot lanes and/or the warm-snapshot cache) is pinned to
/// a snapshot committed *before* the port: the batched path must be a
/// pure wall-clock change, byte-identical to the per-machine trial loop.
/// Heavy axes reuse the determinism sweep's tiny overrides so the debug
/// test build stays fast; the snapshots still cross every ported path.
#[test]
fn batched_routed_scenarios_match_pre_port_snapshots() {
    let routed = [
        "fig08_granularity_add",
        "fig09_granularity_mul",
        "table_granularity",
        "fig10_reorder_distribution",
        "fig11_arbitrary_replacement",
        "fig12_arithmetic",
        "noise_sensitivity_eval",
        "timer_mitigations_eval",
        "detection_eval",
    ];
    // Independent scenarios: fan the snapshot checks across host cores.
    racer_cpu::batch::par_map(&routed, |name| {
        assert_matches_snapshot_with(name, tiny_overrides(name));
    });
}

#[test]
fn cli_writes_identical_valid_json_across_invocations() {
    let bin = env!("CARGO_BIN_EXE_racer-lab");
    let tmp = std::env::temp_dir().join(format!("racer-lab-golden-{}", std::process::id()));
    let run = |sub: &str| {
        let dir = tmp.join(sub);
        let out = Command::new(bin)
            .args(["run", "countermeasures_eval", "--quick", "--quiet", "--out"])
            .arg(&dir)
            .output()
            .expect("spawn racer-lab");
        assert!(
            out.status.success(),
            "racer-lab failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(dir.join("countermeasures_eval.json")).expect("results file")
    };
    let a = run("a");
    let b = run("b");
    assert_eq!(a, b, "CLI output not byte-identical across runs");
    let v = Value::parse(&a).expect("valid JSON on disk");
    assert_eq!(
        v.get("scenario").and_then(Value::as_str),
        Some("countermeasures_eval")
    );
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn cli_rejects_unknown_scenarios_and_bad_overrides() {
    let bin = env!("CARGO_BIN_EXE_racer-lab");
    let unknown = Command::new(bin)
        .args(["run", "no_such_scenario"])
        .output()
        .unwrap();
    assert_eq!(unknown.status.code(), Some(2));
    let bad = Command::new(bin)
        .args([
            "run",
            "fig08_granularity_add",
            "--quick",
            "--set",
            "max_target=lots",
        ])
        .output()
        .unwrap();
    // An invalid parameter value is a param error (exit 5), not a
    // generic usage error — see the taxonomy in racer_lab::error.
    assert_eq!(bad.status.code(), Some(5));
}

#[test]
fn list_names_json_is_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_racer-lab");
    let out = Command::new(bin)
        .args(["list", "--names-json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let names = Value::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("JSON array");
    let names = names.as_array().expect("array");
    assert!(names.len() >= 17);
    assert!(names.iter().any(|n| n.as_str() == Some("perf_baseline")));
}

/// `--shard K/N` must slice the scenario set into pairwise-disjoint
/// pieces whose union is exactly the unsharded list — the property CI
/// matrix legs rely on to jointly cover every scenario exactly once.
#[test]
fn shard_slices_are_disjoint_and_union_complete() {
    let bin = env!("CARGO_BIN_EXE_racer-lab");
    let names = |args: &[&str]| -> Vec<String> {
        let out = Command::new(bin).args(args).output().expect("spawn");
        assert!(
            out.status.success(),
            "racer-lab {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        Value::parse(String::from_utf8_lossy(&out.stdout).trim())
            .expect("JSON array")
            .as_array()
            .expect("array")
            .iter()
            .map(|v| v.as_str().expect("string").to_string())
            .collect()
    };
    let full = names(&["list", "--names-json"]);
    for n in [1usize, 2, 3, 5, full.len(), full.len() + 3] {
        let mut union = Vec::new();
        for k in 1..=n {
            let shard = names(&["list", "--names-json", "--shard", &format!("{k}/{n}")]);
            for name in &shard {
                assert!(
                    !union.contains(name),
                    "scenario {name} appears in more than one shard of {n}"
                );
            }
            union.extend(shard);
        }
        let mut sorted_union = union.clone();
        sorted_union.sort();
        let mut sorted_full = full.clone();
        sorted_full.sort();
        assert_eq!(
            sorted_union, sorted_full,
            "union of {n} shards must equal the full scenario set"
        );
    }
}

/// Intra-scenario sharding end to end: run `timer_mitigations_eval` with
/// each trial-axis slice (`--set shard=K/N`), fold the shard reports with
/// `racer-lab merge`, and check the merged report covers every cell with
/// the full trial weight and records shard provenance.
#[test]
fn trial_shards_merge_into_one_report() {
    let bin = env!("CARGO_BIN_EXE_racer-lab");
    let tmp = std::env::temp_dir().join(format!("racer-lab-merge-{}", std::process::id()));
    let shard_file = |k: usize| {
        let dir = tmp.join(format!("shard{k}"));
        let out = Command::new(bin)
            .args([
                "run",
                "timer_mitigations_eval",
                "--quick",
                "--quiet",
                "--set",
                "timers=5us,1ms",
                "--set",
                "rounds=500",
                "--set",
                "trials=3",
                "--set",
                &format!("shard={k}/2"),
                "--out",
            ])
            .arg(&dir)
            .output()
            .expect("spawn racer-lab");
        assert!(
            out.status.success(),
            "shard {k}/2 failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        dir.join("timer_mitigations_eval.json")
    };
    let (a, b) = (shard_file(1), shard_file(2));
    let merged_path = tmp.join("merged.json");
    let out = Command::new(bin)
        .arg("merge")
        .arg(&merged_path)
        .arg(&a)
        .arg(&b)
        .output()
        .expect("spawn racer-lab merge");
    assert!(
        out.status.success(),
        "merge failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let merged = Value::parse(&std::fs::read_to_string(&merged_path).expect("merged file"))
        .expect("merged report parses");
    assert_eq!(
        merged.get("scenario").and_then(Value::as_str),
        Some("timer_mitigations_eval")
    );
    let points = merged
        .get("results")
        .and_then(|r| r.get("points"))
        .and_then(Value::as_array)
        .expect("merged points");
    assert_eq!(points.len(), 2, "2 timers x 1 round count");
    for p in points {
        assert_eq!(
            p.get("trials").and_then(Value::as_i64),
            Some(3),
            "shard trial counts must sum to the full trial axis"
        );
        let acc = p.get("accuracy").and_then(Value::as_f64).expect("accuracy");
        assert!((0.5..=1.0).contains(&acc));
    }
    let shards = merged
        .get("provenance")
        .and_then(|p| p.get("merged"))
        .and_then(|m| m.get("shards"))
        .and_then(Value::as_array)
        .expect("shard provenance");
    let specs: Vec<&str> = shards.iter().filter_map(Value::as_str).collect();
    assert_eq!(specs, ["1/2", "2/2"]);
    // Too few inputs is a usage error (exit 2); an unreadable input is
    // an IO error (exit 3) — see the taxonomy in racer_lab::error.
    let bad = Command::new(bin)
        .args(["merge", "just-one.json"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
    let missing = Command::new(bin)
        .arg("merge")
        .arg(tmp.join("out.json"))
        .args(["no-such-a.json", "no-such-b.json"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(3));
    std::fs::remove_dir_all(&tmp).ok();
}

/// Bad shard specs are usage errors (exit 2), and an empty shard of an
/// explicit selection exits cleanly without running anything.
#[test]
fn shard_validation_and_empty_shard() {
    let bin = env!("CARGO_BIN_EXE_racer-lab");
    for bad in ["0/3", "4/3", "x/2", "3", "2/0"] {
        let out = Command::new(bin)
            .args(["list", "--names-json", "--shard", bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "spec {bad:?} must be rejected");
    }
    // One scenario split three ways: shard 2 is empty and must no-op.
    let out = Command::new(bin)
        .args(["run", "fig03_plru_walk", "--quick", "--shard", "2/3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("selects no scenarios"),
        "empty shard should say so"
    );
}
