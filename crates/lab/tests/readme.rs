//! Pins the README's scenario table to the registry: the table must
//! list exactly the scenarios `racer-lab list --names-json` reports, in
//! registry order, with the registry's titles and descriptions — so the
//! README can never drift from the code.

use racer_lab::registry;
use std::path::PathBuf;

fn readme() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The scenario table's rows, as `(name, title, description)`.
fn table_rows(text: &str) -> Vec<(String, String, String)> {
    let begin = text
        .find("<!-- scenario-table:begin -->")
        .expect("README lacks the scenario-table:begin marker");
    let end = text
        .find("<!-- scenario-table:end -->")
        .expect("README lacks the scenario-table:end marker");
    text[begin..end]
        .lines()
        .filter(|l| l.starts_with("| `"))
        .map(|line| {
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            assert_eq!(cells.len(), 3, "table row must have 3 cells: {line}");
            (
                cells[0].trim_matches('`').to_string(),
                cells[1].to_string(),
                cells[2].to_string(),
            )
        })
        .collect()
}

#[test]
fn readme_scenario_table_matches_the_registry_exactly() {
    let rows = table_rows(&readme());
    let registry = registry();
    let row_names: Vec<&str> = rows.iter().map(|(n, _, _)| n.as_str()).collect();
    let reg_names: Vec<&str> = registry.iter().map(|s| s.name).collect();
    assert_eq!(
        row_names, reg_names,
        "README scenario table must list exactly the registered scenarios, \
         in registry order (same set racer-lab list --names-json prints)"
    );
    for ((name, title, description), sc) in rows.iter().zip(&registry) {
        assert_eq!(
            title, sc.title,
            "README title for {name} drifted from the registry"
        );
        assert_eq!(
            description, sc.description,
            "README description for {name} drifted from the registry"
        );
    }
}
