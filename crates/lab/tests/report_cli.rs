//! End-to-end tests for `racer-lab report`: round-trips through the
//! built binary, exit codes on malformed/empty input sets, and the
//! byte-identical-output determinism the dashboard artifact relies on.

use racer_results::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_racer-lab")
}

fn tmp(stem: &str) -> PathBuf {
    std::env::temp_dir().join(format!("racer-lab-report-{stem}-{}", std::process::id()))
}

/// Run a couple of quick scenarios into `dir` (tiny overrides keep the
/// debug-build test fast) and return the result file paths.
fn produce_reports(dir: &Path) -> Vec<PathBuf> {
    let runs: &[(&str, &[&str])] = &[
        (
            "timer_mitigations_eval",
            &[
                "--set",
                "timers=5us,1ms",
                "--set",
                "rounds=500",
                "--set",
                "trials=1",
            ],
        ),
        ("countermeasures_eval", &[]),
        (
            "window_ablation_eval",
            &["--set", "rs_sizes=24,32", "--set", "max_probe=60"],
        ),
    ];
    let mut files = Vec::new();
    for (name, overrides) in runs {
        let out = Command::new(bin())
            .args(["run", name, "--quick", "--quiet", "--out"])
            .arg(dir)
            .args(*overrides)
            .output()
            .expect("spawn racer-lab run");
        assert!(
            out.status.success(),
            "run {name} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        files.push(dir.join(format!("{name}.json")));
    }
    files
}

/// Every file under `dir`, as `(relative path, content)` sorted by path.
fn read_site(dir: &Path) -> Vec<(String, String)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
        for entry in std::fs::read_dir(dir)
            .expect("site dir")
            .filter_map(Result::ok)
        {
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, std::fs::read_to_string(&path).expect("page readable")));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort();
    out
}

#[test]
fn report_renders_a_dashboard_and_is_byte_identical_across_renders() {
    let root = tmp("roundtrip");
    let results = root.join("results");
    produce_reports(&results);

    let render = |site: &str| {
        let dir = root.join(site);
        let out = Command::new(bin())
            .arg("report")
            .arg(&dir)
            .arg(&results)
            .output()
            .expect("spawn racer-lab report");
        assert!(
            out.status.success(),
            "report failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("rendered 3 report(s)"),
            "summary line should count the inputs"
        );
        read_site(&dir)
    };
    let a = render("site-a");
    let b = render("site-b");
    assert_eq!(
        a, b,
        "two renders of the same inputs must be byte-identical"
    );

    let paths: Vec<&str> = a.iter().map(|(p, _)| p.as_str()).collect();
    assert_eq!(
        paths,
        [
            "index.html",
            "scenarios/countermeasures_eval.html",
            "scenarios/timer_mitigations_eval.html",
            "scenarios/window_ablation_eval.html",
        ]
    );
    let page = |name: &str| &a.iter().find(|(p, _)| p == name).expect("page").1;
    // Index: every scenario listed with registry titles and provenance.
    let index = page("index.html");
    assert!(index.contains("timer_mitigations_eval"));
    assert!(index.contains("timer mitigations"));
    assert!(index.contains("seed 0"));
    // Sweep pages carry inline-SVG plots and the provenance block.
    let sweep = page("scenarios/timer_mitigations_eval.html");
    assert!(sweep.contains("<svg"), "sweep page must have a plot");
    assert!(sweep.contains("git describe"));
    assert!(sweep.contains("config.trials"));
    let ablation = page("scenarios/window_ablation_eval.html");
    assert!(ablation.contains("reach vs rs_size"));
    // The bool matrix renders as a table, not a chart.
    assert!(!page("scenarios/countermeasures_eval.html").contains("<svg"));

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn report_exit_codes_cover_the_failure_surface() {
    let root = tmp("errors");
    std::fs::create_dir_all(&root).expect("mkdir");
    let run = |args: &[&std::ffi::OsStr]| Command::new(bin()).args(args).output().expect("spawn");
    let os = std::ffi::OsStr::new;

    // Missing out-dir.
    let out = run(&[os("report")]);
    assert_eq!(out.status.code(), Some(2));

    // Empty report set: a directory with no .json files is a usage
    // error, not an empty dashboard.
    let empty = root.join("empty");
    std::fs::create_dir_all(&empty).expect("mkdir");
    let out = run(&[
        os("report"),
        root.join("site").as_os_str(),
        empty.as_os_str(),
    ]);
    assert_eq!(out.status.code(), Some(2), "empty input set must exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no .json report files"));

    // Nonexistent input path: an IO failure, exit 3.
    let out = run(&[
        os("report"),
        root.join("site").as_os_str(),
        root.join("no-such-dir").as_os_str(),
    ]);
    assert_eq!(out.status.code(), Some(3), "unreadable input must exit 3");

    // Malformed JSON: a parse failure, exit 4.
    let bad = root.join("bad.json");
    std::fs::write(&bad, "{ not json").expect("write");
    let out = run(&[os("report"), root.join("site").as_os_str(), bad.as_os_str()]);
    assert_eq!(out.status.code(), Some(4), "malformed JSON must exit 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("parsing"));

    // Valid JSON that is not a racer-lab/v1 report: also a parse
    // failure (the envelope check), exit 4.
    let wrong = root.join("wrong.json");
    std::fs::write(&wrong, "{\"schema\": \"other/v9\"}\n").expect("write");
    let out = run(&[
        os("report"),
        root.join("site").as_os_str(),
        wrong.as_os_str(),
    ]);
    assert_eq!(out.status.code(), Some(4), "wrong schema must exit 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("racer-lab/v1"));

    // Flags are rejected (the subcommand takes only paths).
    let out = run(&[os("report"), root.join("site").as_os_str(), os("--quick")]);
    assert_eq!(out.status.code(), Some(2));

    // Nothing was written for any failure.
    assert!(!root.join("site").exists(), "failed renders must not write");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn keep_going_skips_bad_inputs_and_signals_partial_success() {
    let root = tmp("keep-going");
    let inputs = root.join("inputs");
    std::fs::create_dir_all(&inputs).expect("mkdir");

    // One structurally valid report (hand-built: the envelope is all the
    // renderer needs), one malformed file, one wrong-schema file.
    let good = Value::object()
        .with("schema", "racer-lab/v1")
        .with("scenario", "hand_built_eval")
        .with("scale", "quick")
        .with(
            "results",
            Value::object().with("accuracy", 0.875).with("trials", 8),
        );
    std::fs::write(inputs.join("good.json"), good.to_pretty()).expect("write");
    std::fs::write(inputs.join("bad.json"), "{ not json").expect("write");
    std::fs::write(inputs.join("wrong.json"), "{\"schema\": \"other/v9\"}\n").expect("write");

    let site = root.join("site");
    let out = Command::new(bin())
        .arg("report")
        .arg(&site)
        .arg(&inputs)
        .arg("--keep-going")
        .output()
        .expect("spawn racer-lab report --keep-going");
    assert_eq!(
        out.status.code(),
        Some(9),
        "skipped inputs must signal partial success: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("skipping input") && stderr.contains("bad.json"),
        "each skip must be warned on stderr: {stderr}"
    );
    assert!(stderr.contains("wrong.json"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rendered 1 report(s)"));
    assert!(stdout.contains("2 input(s) skipped"));
    let index = std::fs::read_to_string(site.join("index.html")).expect("index rendered");
    assert!(index.contains("hand_built_eval"));

    // Without --keep-going the same input set fails hard on the first
    // bad file and writes nothing.
    let site2 = root.join("site2");
    let out = Command::new(bin())
        .arg("report")
        .arg(&site2)
        .arg(&inputs)
        .output()
        .expect("spawn racer-lab report");
    assert_eq!(out.status.code(), Some(4));
    assert!(!site2.exists(), "failed renders must not write");

    // Nothing usable at all: exit 2 even under --keep-going.
    let out = Command::new(bin())
        .args(["report"])
        .arg(root.join("site3"))
        .arg(inputs.join("bad.json"))
        .arg("--keep-going")
        .output()
        .expect("spawn racer-lab report");
    assert_eq!(
        out.status.code(),
        Some(2),
        "an empty usable set is a usage error even with --keep-going"
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn merged_shard_reports_render_with_lineage() {
    let root = tmp("merged");
    let shard = |k: usize| {
        let dir = root.join(format!("shard{k}"));
        let out = Command::new(bin())
            .args([
                "run",
                "timer_mitigations_eval",
                "--quick",
                "--quiet",
                "--set",
                "timers=5us,1ms",
                "--set",
                "rounds=500",
                "--set",
                "trials=2",
                "--set",
                &format!("shard={k}/2"),
                "--out",
            ])
            .arg(&dir)
            .output()
            .expect("spawn racer-lab run");
        assert!(out.status.success());
        dir.join("timer_mitigations_eval.json")
    };
    let (a, b) = (shard(1), shard(2));
    let merged = root.join("merged/timer_mitigations_eval.json");
    let out = Command::new(bin())
        .arg("merge")
        .arg(&merged)
        .arg(&a)
        .arg(&b)
        .output()
        .expect("spawn racer-lab merge");
    assert!(
        out.status.success(),
        "merge failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let site = root.join("site");
    let out = Command::new(bin())
        .arg("report")
        .arg(&site)
        .arg(&merged)
        .output()
        .expect("spawn racer-lab report");
    assert!(
        out.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let index = std::fs::read_to_string(site.join("index.html")).expect("index");
    assert!(
        index.contains("merged 1/2+2/2"),
        "merge lineage on the index"
    );
    let page = std::fs::read_to_string(site.join("scenarios/timer_mitigations_eval.html"))
        .expect("scenario page");
    assert!(page.contains("merged shards"));
    assert!(page.contains("1/2"));
    assert!(Value::parse(&std::fs::read_to_string(&merged).expect("merged readable")).is_ok());
    std::fs::remove_dir_all(&root).ok();
}
