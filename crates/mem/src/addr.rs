//! Byte addresses, cache-line addresses and set-index math.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a cache line in bytes. Fixed at 64, matching essentially every
/// contemporary x86/Arm core (and the paper's Coffee Lake evaluation machine).
pub const LINE_BYTES: u64 = 64;

/// A byte address in the simulated flat physical address space.
///
/// ```
/// use racer_mem::{Addr, LINE_BYTES};
/// let a = Addr(130);
/// assert_eq!(a.line().0, 2);
/// assert_eq!(a.line_offset(), 2);
/// assert_eq!(a.line().base_addr(), Addr(2 * LINE_BYTES));
/// ```
#[derive(
    Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

/// A cache-line address: the byte address divided by [`LINE_BYTES`].
#[derive(
    Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Offset of this address within its cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// The address `bytes` further on (wrapping, as the simulated address
    /// space is a plain `u64`).
    #[inline]
    pub fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }
}

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base_addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// Set index for a cache with `num_sets` sets (power of two), using the
    /// conventional low-order line-address bits.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `num_sets` is not a power of two.
    #[inline]
    pub fn set_index(self, num_sets: usize) -> usize {
        debug_assert!(
            num_sets.is_power_of_two(),
            "num_sets must be a power of two"
        );
        (self.0 as usize) & (num_sets - 1)
    }

    /// The line `n` lines further on.
    #[inline]
    pub fn offset(self, n: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(n as u64))
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math_round_trips() {
        for raw in [0u64, 1, 63, 64, 65, 4096, u64::MAX - 64] {
            let a = Addr(raw);
            assert_eq!(a.line().base_addr().0 + a.line_offset(), raw);
        }
    }

    #[test]
    fn set_index_uses_low_bits() {
        assert_eq!(LineAddr(0).set_index(64), 0);
        assert_eq!(LineAddr(63).set_index(64), 63);
        assert_eq!(LineAddr(64).set_index(64), 0);
        assert_eq!(LineAddr(130).set_index(64), 2);
    }

    #[test]
    fn addr_offset_moves_by_bytes() {
        let a = Addr(100);
        assert_eq!(a.offset(64).line().0, a.line().0 + 1);
        assert_eq!(a.offset(-36), Addr(64));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(0x1234).to_string(), "0x1234");
        assert_eq!(LineAddr(0x10).to_string(), "line:0x10");
    }

    #[test]
    fn conversions() {
        let a: Addr = 42u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 42);
    }
}
