//! A single set-associative cache level, stored struct-of-arrays in
//! copy-on-write chunks.
//!
//! Tags and valid bits live in contiguous per-chunk arrays (way-major
//! within each set) and replacement state is packed per chunk in a
//! [`PackedPolicy`](crate::replacement) enum — no per-set allocations, no
//! `Box<dyn ReplacementPolicy>` virtual dispatch, and a single tag scan per
//! access via [`Cache::lookup`] whose result the hit path reuses.
//!
//! Each chunk covers [`SETS_PER_CHUNK`] consecutive sets and sits behind an
//! [`Arc`]: cloning a `Cache` copies chunk *pointers* only, and a clone
//! materialises a private copy of a chunk the first time it mutates a set
//! inside it (`Arc::make_mut`). Sixty-four batch lanes forked from one
//! warmed snapshot therefore share a single L2/L3 image until their access
//! streams actually diverge — and pay copy costs proportional to the sets
//! they touch, not the level's size. Value semantics are unchanged: a clone
//! is observationally an independent deep copy.
//!
//! The boxed per-set implementation ([`CacheSet`](crate::CacheSet)) is
//! retained as the reference model; the differential proptest in
//! `crates/mem/tests/differential.rs` pins the two bit-identical, and
//! `crates/mem/tests/cow.rs` pins forked (chunk-sharing) clones against
//! eagerly materialised ones.

use crate::addr::LineAddr;
use crate::replacement::{PackedPolicy, ReplacementKind};
use crate::set::FillOutcome;
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Sets per copy-on-write chunk. 64 keeps a Coffee-Lake L1D (64 sets) in
/// one chunk while splitting the L2 into 16 and the L3 into 128
/// independently materialisable blocks (~9 KB each for the L3) — fine
/// enough that a lane touching a few hundred lines copies kilobytes, not
/// the megabyte-scale level.
const SETS_PER_CHUNK: usize = 64;

/// Geometry and policy of one cache level.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Load-to-use latency in cycles when this level hits.
    pub hit_latency: u64,
    /// Replacement policy for every set.
    pub replacement: ReplacementKind,
    /// Base RNG seed (per-set seeds are derived from it; only meaningful for
    /// stochastic policies).
    pub seed: u64,
}

impl CacheConfig {
    /// 32 KB, 8-way, 64-set L1D with tree-PLRU at 4-cycle latency — the
    /// paper's Coffee Lake evaluation machine.
    pub fn l1d_coffee_lake() -> Self {
        CacheConfig {
            sets: 64,
            ways: 8,
            hit_latency: 4,
            replacement: ReplacementKind::TreePlru,
            seed: 0x11d,
        }
    }

    /// 256 KB, 4-way, 1024-set unified L2 at 12-cycle latency.
    pub fn l2_coffee_lake() -> Self {
        CacheConfig {
            sets: 1024,
            ways: 4,
            hit_latency: 12,
            replacement: ReplacementKind::TreePlru,
            seed: 0x12,
        }
    }

    /// Shared L3 at 40-cycle latency. The paper's machine has a 9 MB 12-way
    /// LLC; we round to 8 MB / 16-way / 8192 sets to keep power-of-two
    /// indexing and tree-PLRU's power-of-two way requirement. Capacity class
    /// and inclusivity — the properties the attacks rely on — are preserved.
    pub fn l3_coffee_lake() -> Self {
        CacheConfig {
            sets: 8192,
            ways: 16,
            hit_latency: 40,
            replacement: ReplacementKind::TreePlru,
            seed: 0x13,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * crate::LINE_BYTES
    }
}

/// One copy-on-write block of consecutive sets: their tags, valid masks and
/// packed replacement state. Sized so materialising a block on first write
/// copies kilobytes.
#[derive(Clone, Debug)]
struct Chunk {
    /// Line addresses, `chunk_sets * ways` entries, way-major within each
    /// set. Entries are only meaningful where the set's valid bit is set.
    tags: Vec<u64>,
    /// Per-set occupancy bitmask (bit `w` set ⇔ way `w` holds a line).
    valid: Vec<u64>,
    /// Replacement state for the chunk's sets (local indices; random
    /// per-set seeds still derive from the global set index).
    policy: PackedPolicy,
}

impl Chunk {
    /// Heap bytes a private copy of this chunk costs.
    fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.tags.as_slice())
            + std::mem::size_of_val(self.valid.as_slice())
            + self.policy.heap_bytes()
    }
}

/// A single cache level: flattened tag arrays, packed per-set replacement
/// state and counters, chunked copy-on-write (see the [module docs](self)).
///
/// ```
/// use racer_mem::{Cache, CacheConfig, LineAddr};
/// let mut l1 = Cache::new(CacheConfig::l1d_coffee_lake());
/// let line = LineAddr(0x40);
/// assert!(!l1.access(line));      // cold miss
/// l1.fill(line);
/// assert!(l1.access(line));       // now hits
///
/// // Clones share storage until written: a fork costs pointer copies.
/// let fork = l1.clone();
/// assert_eq!(fork.shared_chunks_with(&l1), l1.num_chunks());
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    ways: usize,
    /// `log2(sets per chunk)` — shift a set index right by this for its
    /// chunk index.
    chunk_shift: u32,
    /// `sets per chunk - 1` — mask a set index by this for its local index.
    chunk_mask: usize,
    /// The level's sets in consecutive copy-on-write chunks.
    chunks: Vec<Arc<Chunk>>,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sets` is not a power of two, `cfg.ways` is zero or
    /// exceeds 64 (the packed replacement layouts use one bit-word per set).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(cfg.ways >= 1, "need at least one way");
        let chunk_sets = cfg.sets.min(SETS_PER_CHUNK);
        let chunks = (0..cfg.sets / chunk_sets)
            .map(|c| {
                Arc::new(Chunk {
                    tags: vec![0; chunk_sets * cfg.ways],
                    valid: vec![0; chunk_sets],
                    policy: PackedPolicy::new_at_offset(
                        cfg.replacement,
                        chunk_sets,
                        cfg.ways,
                        cfg.seed,
                        c * chunk_sets,
                    ),
                })
            })
            .collect();
        Cache {
            ways: cfg.ways,
            chunk_shift: chunk_sets.trailing_zeros(),
            chunk_mask: chunk_sets - 1,
            chunks,
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Set index for `line`.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> usize {
        line.set_index(self.cfg.sets)
    }

    /// The chunk holding `set`, plus the set's local index inside it
    /// (read path: shared storage is fine).
    #[inline]
    fn chunk(&self, set: usize) -> (&Chunk, usize) {
        (&self.chunks[set >> self.chunk_shift], set & self.chunk_mask)
    }

    /// Mutable access to the chunk holding `set` — materialises a private
    /// copy if the chunk is still shared with a clone (copy-on-write).
    #[inline]
    fn chunk_mut(&mut self, set: usize) -> (&mut Chunk, usize) {
        (
            Arc::make_mut(&mut self.chunks[set >> self.chunk_shift]),
            set & self.chunk_mask,
        )
    }

    /// The full-set occupancy mask for this associativity.
    #[inline]
    fn full_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    /// Way currently holding `line`, if resident — one contiguous tag scan,
    /// touching no replacement state. This is the single lookup the hit
    /// paths reuse: callers pass the returned way to [`Cache::record_hit`]
    /// instead of paying a second scan (the old `probe`-then-`access`
    /// pattern walked the tags twice).
    #[inline]
    pub fn lookup(&self, line: LineAddr) -> Option<usize> {
        let (chunk, local) = self.chunk(self.set_index(line));
        let vmask = chunk.valid[local];
        let base = local * self.ways;
        let tags = &chunk.tags[base..base + self.ways];
        for (w, &t) in tags.iter().enumerate() {
            if t == line.0 && (vmask >> w) & 1 == 1 {
                return Some(w);
            }
        }
        None
    }

    /// Whether `line` is resident, without touching replacement state.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        self.lookup(line).is_some()
    }

    /// Record a demand hit on `line`, known (from [`Cache::lookup`]) to be
    /// resident in `way`: updates replacement state and counters without
    /// re-scanning the tags.
    #[inline]
    pub fn record_hit(&mut self, line: LineAddr, way: usize) {
        debug_assert_eq!(self.lookup(line), Some(way), "record_hit on a stale way");
        let (chunk, local) = self.chunk_mut(self.set_index(line));
        chunk.policy.on_hit(local, way);
        self.stats.hits += 1;
    }

    /// Record a demand miss (the lookup found nothing; the hierarchy
    /// decides fills).
    #[inline]
    pub fn record_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Demand access: returns `true` on hit (updating replacement state),
    /// `false` on miss (*without* filling — the hierarchy decides fills).
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> bool {
        match self.lookup(line) {
            Some(way) => {
                self.record_hit(line, way);
                true
            }
            None => {
                self.record_miss();
                false
            }
        }
    }

    /// Insert `line`, returning the eviction outcome.
    pub fn fill(&mut self, line: LineAddr) -> FillOutcome {
        self.fill_inner(line, false)
    }

    /// Insert `line` with a non-temporal hint (placed at eviction-candidate
    /// priority; paper §6.3.1 footnote 7).
    pub fn fill_low_priority(&mut self, line: LineAddr) -> FillOutcome {
        self.fill_inner(line, true)
    }

    fn fill_inner(&mut self, line: LineAddr, low_priority: bool) -> FillOutcome {
        let resident = self.lookup(line);
        let ways = self.ways;
        let full = self.full_mask();
        let (chunk, local) = self.chunk_mut(self.set_index(line));
        let out = if let Some(way) = resident {
            // Already resident: degenerates to a touch (hardware never
            // double-fills a line).
            chunk.policy.on_hit(local, way);
            FillOutcome { way, evicted: None }
        } else {
            let base = local * ways;
            let vmask = chunk.valid[local];
            // Prefer the lowest-index empty way; only a full set consults
            // the policy for a victim.
            let (way, evicted) = if vmask != full {
                ((!vmask).trailing_zeros() as usize, None)
            } else {
                let victim = chunk.policy.victim(local);
                (victim, Some(LineAddr(chunk.tags[base + victim])))
            };
            chunk.tags[base + way] = line.0;
            chunk.valid[local] = vmask | (1 << way);
            if low_priority {
                chunk.policy.on_fill_low_priority(local, way);
            } else {
                chunk.policy.on_fill(local, way);
            }
            FillOutcome { way, evicted }
        };
        self.stats.fills += 1;
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        out
    }

    /// Remove `line` if resident (flush / back-invalidation).
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        match self.lookup(line) {
            Some(way) => {
                let (chunk, local) = self.chunk_mut(self.set_index(line));
                chunk.valid[local] &= !(1u64 << way);
                chunk.policy.on_invalidate(local, way);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    /// Read-only view of one set, for diagnostics, experiments and tests.
    pub fn set(&self, index: usize) -> SetView<'_> {
        assert!(index < self.cfg.sets, "set index out of range");
        SetView {
            cache: self,
            set: index,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.cfg.sets
    }

    /// Number of copy-on-write chunks backing this level.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// How many of this cache's chunks are still *physically shared* with
    /// `other` (same allocation — neither side has written into them since
    /// the clone). Two independently built caches share nothing; a fresh
    /// clone shares everything.
    pub fn shared_chunks_with(&self, other: &Cache) -> usize {
        if self.chunks.len() != other.chunks.len() {
            return 0;
        }
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Heap bytes of the chunks this cache does **not** share with `base` —
    /// the private, already-materialised part of a copy-on-write clone.
    /// Against the snapshot it forked from, this is the clone's real memory
    /// footprint (the batch engine sizes its lockstep slices from it).
    pub fn private_bytes_vs(&self, base: &Cache) -> usize {
        if self.chunks.len() != base.chunks.len() {
            return self.chunks.iter().map(|c| c.heap_bytes()).sum();
        }
        self.chunks
            .iter()
            .zip(&base.chunks)
            .filter(|(a, b)| !Arc::ptr_eq(a, b))
            .map(|(a, _)| a.heap_bytes())
            .sum()
    }

    /// Materialise a private copy of every still-shared chunk, making this
    /// cache's storage fully independent of any clone — the eager
    /// deep-clone the copy-on-write representation otherwise avoids.
    /// Observable state is unchanged.
    pub fn unshare(&mut self) {
        for chunk in &mut self.chunks {
            let _ = Arc::make_mut(chunk);
        }
    }

    /// Event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset counters (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Empty every set and reset all replacement state and counters (random
    /// replacement keeps its RNG streams, as hardware randomness does not
    /// rewind).
    pub fn clear(&mut self) {
        for chunk in &mut self.chunks {
            let chunk = Arc::make_mut(chunk);
            chunk.valid.fill(0);
            chunk.policy.reset();
        }
        self.stats.reset();
    }
}

/// Read-only view of one set of a [`Cache`] — the flattened-storage
/// equivalent of handing out `&CacheSet`.
#[derive(Copy, Clone)]
pub struct SetView<'a> {
    cache: &'a Cache,
    set: usize,
}

impl<'a> SetView<'a> {
    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.cache.ways
    }

    /// Way currently holding `line`, if resident in this set.
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        let (chunk, local) = self.cache.chunk(self.set);
        let vmask = chunk.valid[local];
        let base = local * self.cache.ways;
        (0..self.cache.ways).find(|&w| (vmask >> w) & 1 == 1 && chunk.tags[base + w] == line.0)
    }

    /// Whether `line` is resident in this set.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.way_of(line).is_some()
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        let (chunk, local) = self.cache.chunk(self.set);
        chunk.valid[local].count_ones() as usize
    }

    /// The resident lines, in way order.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + 'a {
        let (chunk, local) = self.cache.chunk(self.set);
        let vmask = chunk.valid[local];
        let base = local * self.cache.ways;
        let tags = &chunk.tags[base..base + self.cache.ways];
        tags.iter()
            .enumerate()
            .filter(move |&(w, _)| (vmask >> w) & 1 == 1)
            .map(|(_, &t)| LineAddr(t))
    }

    /// The line the policy would evict next if a fill arrived now (only
    /// meaningful when the set is full).
    pub fn eviction_candidate(&self) -> Option<LineAddr> {
        if self.occupancy() < self.cache.ways {
            return None;
        }
        let (chunk, local) = self.cache.chunk(self.set);
        let way = chunk.policy.peek_victim(local);
        Some(LineAddr(chunk.tags[local * self.cache.ways + way]))
    }
}

impl std::fmt::Debug for SetView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetView")
            .field("set", &self.set)
            .field("lines", &self.resident_lines().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;

    #[test]
    fn capacity_matches_coffee_lake() {
        assert_eq!(CacheConfig::l1d_coffee_lake().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l2_coffee_lake().capacity_bytes(), 256 * 1024);
        assert_eq!(
            CacheConfig::l3_coffee_lake().capacity_bytes(),
            8 * 1024 * 1024
        );
    }

    #[test]
    fn lines_map_to_disjoint_sets() {
        let c = Cache::new(CacheConfig::l1d_coffee_lake());
        // Lines differing only above the index bits share a set.
        assert_eq!(c.set_index(LineAddr(5)), c.set_index(LineAddr(5 + 64)));
        assert_ne!(c.set_index(LineAddr(5)), c.set_index(LineAddr(6)));
    }

    #[test]
    fn access_fill_probe_roundtrip() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x123);
        assert!(!c.probe(l));
        assert!(!c.access(l));
        c.fill(l);
        assert!(c.probe(l));
        assert!(c.access(l));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn lookup_returns_the_way_the_fill_used() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x40);
        assert_eq!(c.lookup(l), None);
        let out = c.fill(l);
        assert_eq!(c.lookup(l), Some(out.way));
    }

    #[test]
    fn conflict_evictions_counted() {
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            hit_latency: 1,
            replacement: ReplacementKind::Lru,
            seed: 0,
        };
        let mut c = Cache::new(cfg);
        // Three lines in the same set of a 2-way cache.
        for i in 0..3u64 {
            c.fill(LineAddr(i * 2));
        }
        assert_eq!(c.stats().evictions, 1);
        assert!(!c.probe(LineAddr(0)), "LRU victim was line 0");
    }

    #[test]
    fn invalidate_then_probe_misses() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x55);
        c.fill(l);
        assert!(c.invalidate(l));
        assert!(!c.probe(l));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        c.fill(LineAddr(1));
        c.access(LineAddr(1));
        c.clear();
        assert!(!c.probe(LineAddr(1)));
        assert_eq!(c.stats(), &CacheStats::default());
    }

    #[test]
    fn set_view_reports_contents_in_way_order() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        // Two lines mapping to set 3 (stride = 64 lines).
        c.fill(LineAddr(3));
        c.fill(LineAddr(3 + 64));
        let view = c.set(3);
        assert_eq!(view.occupancy(), 2);
        assert_eq!(view.way_of(LineAddr(3)), Some(0));
        assert_eq!(view.way_of(LineAddr(3 + 64)), Some(1));
        assert!(view.contains(LineAddr(3)));
        assert_eq!(
            view.resident_lines().collect::<Vec<_>>(),
            vec![LineAddr(3), LineAddr(3 + 64)]
        );
        assert_eq!(view.eviction_candidate(), None, "set not full yet");
    }

    #[test]
    fn clones_share_chunks_until_written() {
        let mut base = Cache::new(CacheConfig::l2_coffee_lake());
        for i in 0..256u64 {
            base.fill(LineAddr(i));
        }
        let mut fork = base.clone();
        assert_eq!(fork.num_chunks(), 16, "1024 sets / 64 per chunk");
        assert_eq!(fork.shared_chunks_with(&base), 16);
        assert_eq!(fork.private_bytes_vs(&base), 0);

        // Reads (lookup/probe/set views) never materialise.
        assert!(fork.probe(LineAddr(7)));
        let _ = fork.set(0).eviction_candidate();
        assert_eq!(fork.shared_chunks_with(&base), 16);

        // A write splits exactly the chunk it lands in…
        fork.fill(LineAddr(4096));
        assert_eq!(fork.shared_chunks_with(&base), 15);
        assert!(fork.private_bytes_vs(&base) > 0);
        // …without becoming visible to the original.
        assert!(!base.probe(LineAddr(4096)));
        assert!(fork.probe(LineAddr(4096)));
    }

    #[test]
    fn unshare_materialises_everything_without_observable_change() {
        let mut base = Cache::new(CacheConfig::l1d_coffee_lake());
        for i in 0..100u64 {
            base.fill(LineAddr(i * 3));
        }
        let mut fork = base.clone();
        fork.unshare();
        assert_eq!(fork.shared_chunks_with(&base), 0);
        for set in 0..base.num_sets() {
            assert_eq!(
                fork.set(set).resident_lines().collect::<Vec<_>>(),
                base.set(set).resident_lines().collect::<Vec<_>>()
            );
            assert_eq!(
                fork.set(set).eviction_candidate(),
                base.set(set).eviction_candidate()
            );
        }
    }
}
