//! A single set-associative cache level, stored struct-of-arrays.
//!
//! Tags and valid bits live in contiguous per-level arrays (way-major
//! within each set) and replacement state is packed per level in a
//! [`PackedPolicy`](crate::replacement) enum — no per-set allocations, no
//! `Box<dyn ReplacementPolicy>` virtual dispatch, and a single tag scan per
//! access via [`Cache::lookup`] whose result the hit path reuses. The boxed
//! per-set implementation ([`CacheSet`](crate::CacheSet)) is retained as
//! the reference model; the differential proptest in
//! `crates/mem/tests/differential.rs` pins the two bit-identical.

use crate::addr::LineAddr;
use crate::replacement::{PackedPolicy, ReplacementKind};
use crate::set::FillOutcome;
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};

/// Geometry and policy of one cache level.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Load-to-use latency in cycles when this level hits.
    pub hit_latency: u64,
    /// Replacement policy for every set.
    pub replacement: ReplacementKind,
    /// Base RNG seed (per-set seeds are derived from it; only meaningful for
    /// stochastic policies).
    pub seed: u64,
}

impl CacheConfig {
    /// 32 KB, 8-way, 64-set L1D with tree-PLRU at 4-cycle latency — the
    /// paper's Coffee Lake evaluation machine.
    pub fn l1d_coffee_lake() -> Self {
        CacheConfig {
            sets: 64,
            ways: 8,
            hit_latency: 4,
            replacement: ReplacementKind::TreePlru,
            seed: 0x11d,
        }
    }

    /// 256 KB, 4-way, 1024-set unified L2 at 12-cycle latency.
    pub fn l2_coffee_lake() -> Self {
        CacheConfig {
            sets: 1024,
            ways: 4,
            hit_latency: 12,
            replacement: ReplacementKind::TreePlru,
            seed: 0x12,
        }
    }

    /// Shared L3 at 40-cycle latency. The paper's machine has a 9 MB 12-way
    /// LLC; we round to 8 MB / 16-way / 8192 sets to keep power-of-two
    /// indexing and tree-PLRU's power-of-two way requirement. Capacity class
    /// and inclusivity — the properties the attacks rely on — are preserved.
    pub fn l3_coffee_lake() -> Self {
        CacheConfig {
            sets: 8192,
            ways: 16,
            hit_latency: 40,
            replacement: ReplacementKind::TreePlru,
            seed: 0x13,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * crate::LINE_BYTES
    }
}

/// A single cache level: flattened tag arrays, packed per-set replacement
/// state and counters.
///
/// ```
/// use racer_mem::{Cache, CacheConfig, LineAddr};
/// let mut l1 = Cache::new(CacheConfig::l1d_coffee_lake());
/// let line = LineAddr(0x40);
/// assert!(!l1.access(line));      // cold miss
/// l1.fill(line);
/// assert!(l1.access(line));       // now hits
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    ways: usize,
    /// Line addresses, `sets * ways` entries, way-major within each set.
    /// Entries are only meaningful where the set's valid bit is set.
    tags: Vec<u64>,
    /// Per-set occupancy bitmask (bit `w` set ⇔ way `w` holds a line).
    valid: Vec<u64>,
    policy: PackedPolicy,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sets` is not a power of two, `cfg.ways` is zero or
    /// exceeds 64 (the packed replacement layouts use one bit-word per set).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(cfg.ways >= 1, "need at least one way");
        Cache {
            ways: cfg.ways,
            tags: vec![0; cfg.sets * cfg.ways],
            valid: vec![0; cfg.sets],
            policy: PackedPolicy::new(cfg.replacement, cfg.sets, cfg.ways, cfg.seed),
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Set index for `line`.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> usize {
        line.set_index(self.cfg.sets)
    }

    /// The full-set occupancy mask for this associativity.
    #[inline]
    fn full_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    /// Way currently holding `line`, if resident — one contiguous tag scan,
    /// touching no replacement state. This is the single lookup the hit
    /// paths reuse: callers pass the returned way to [`Cache::record_hit`]
    /// instead of paying a second scan (the old `probe`-then-`access`
    /// pattern walked the tags twice).
    #[inline]
    pub fn lookup(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_index(line);
        let vmask = self.valid[set];
        let base = set * self.ways;
        let tags = &self.tags[base..base + self.ways];
        for (w, &t) in tags.iter().enumerate() {
            if t == line.0 && (vmask >> w) & 1 == 1 {
                return Some(w);
            }
        }
        None
    }

    /// Whether `line` is resident, without touching replacement state.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        self.lookup(line).is_some()
    }

    /// Record a demand hit on `line`, known (from [`Cache::lookup`]) to be
    /// resident in `way`: updates replacement state and counters without
    /// re-scanning the tags.
    #[inline]
    pub fn record_hit(&mut self, line: LineAddr, way: usize) {
        debug_assert_eq!(self.lookup(line), Some(way), "record_hit on a stale way");
        self.policy.on_hit(self.set_index(line), way);
        self.stats.hits += 1;
    }

    /// Record a demand miss (the lookup found nothing; the hierarchy
    /// decides fills).
    #[inline]
    pub fn record_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Demand access: returns `true` on hit (updating replacement state),
    /// `false` on miss (*without* filling — the hierarchy decides fills).
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> bool {
        match self.lookup(line) {
            Some(way) => {
                self.record_hit(line, way);
                true
            }
            None => {
                self.record_miss();
                false
            }
        }
    }

    /// Insert `line`, returning the eviction outcome.
    pub fn fill(&mut self, line: LineAddr) -> FillOutcome {
        self.fill_inner(line, false)
    }

    /// Insert `line` with a non-temporal hint (placed at eviction-candidate
    /// priority; paper §6.3.1 footnote 7).
    pub fn fill_low_priority(&mut self, line: LineAddr) -> FillOutcome {
        self.fill_inner(line, true)
    }

    fn fill_inner(&mut self, line: LineAddr, low_priority: bool) -> FillOutcome {
        let set = self.set_index(line);
        let out = if let Some(way) = self.lookup(line) {
            // Already resident: degenerates to a touch (hardware never
            // double-fills a line).
            self.policy.on_hit(set, way);
            FillOutcome { way, evicted: None }
        } else {
            let base = set * self.ways;
            let vmask = self.valid[set];
            // Prefer the lowest-index empty way; only a full set consults
            // the policy for a victim.
            let (way, evicted) = if vmask != self.full_mask() {
                ((!vmask).trailing_zeros() as usize, None)
            } else {
                let victim = self.policy.victim(set);
                (victim, Some(LineAddr(self.tags[base + victim])))
            };
            self.tags[base + way] = line.0;
            self.valid[set] = vmask | (1 << way);
            if low_priority {
                self.policy.on_fill_low_priority(set, way);
            } else {
                self.policy.on_fill(set, way);
            }
            FillOutcome { way, evicted }
        };
        self.stats.fills += 1;
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        out
    }

    /// Remove `line` if resident (flush / back-invalidation).
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        match self.lookup(line) {
            Some(way) => {
                let set = self.set_index(line);
                self.valid[set] &= !(1u64 << way);
                self.policy.on_invalidate(set, way);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    /// Read-only view of one set, for diagnostics, experiments and tests.
    pub fn set(&self, index: usize) -> SetView<'_> {
        assert!(index < self.cfg.sets, "set index out of range");
        SetView {
            cache: self,
            set: index,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.cfg.sets
    }

    /// Event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset counters (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Empty every set and reset all replacement state and counters (random
    /// replacement keeps its RNG streams, as hardware randomness does not
    /// rewind).
    pub fn clear(&mut self) {
        self.valid.fill(0);
        self.policy.reset();
        self.stats.reset();
    }
}

/// Read-only view of one set of a [`Cache`] — the flattened-storage
/// equivalent of handing out `&CacheSet`.
#[derive(Copy, Clone)]
pub struct SetView<'a> {
    cache: &'a Cache,
    set: usize,
}

impl<'a> SetView<'a> {
    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.cache.ways
    }

    /// Way currently holding `line`, if resident in this set.
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        let vmask = self.cache.valid[self.set];
        let base = self.set * self.cache.ways;
        (0..self.cache.ways).find(|&w| (vmask >> w) & 1 == 1 && self.cache.tags[base + w] == line.0)
    }

    /// Whether `line` is resident in this set.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.way_of(line).is_some()
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.cache.valid[self.set].count_ones() as usize
    }

    /// The resident lines, in way order.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + 'a {
        let vmask = self.cache.valid[self.set];
        let base = self.set * self.cache.ways;
        let tags = &self.cache.tags[base..base + self.cache.ways];
        tags.iter()
            .enumerate()
            .filter(move |&(w, _)| (vmask >> w) & 1 == 1)
            .map(|(_, &t)| LineAddr(t))
    }

    /// The line the policy would evict next if a fill arrived now (only
    /// meaningful when the set is full).
    pub fn eviction_candidate(&self) -> Option<LineAddr> {
        if self.occupancy() < self.cache.ways {
            return None;
        }
        let way = self.cache.policy.peek_victim(self.set);
        Some(LineAddr(self.cache.tags[self.set * self.cache.ways + way]))
    }
}

impl std::fmt::Debug for SetView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetView")
            .field("set", &self.set)
            .field("lines", &self.resident_lines().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;

    #[test]
    fn capacity_matches_coffee_lake() {
        assert_eq!(CacheConfig::l1d_coffee_lake().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l2_coffee_lake().capacity_bytes(), 256 * 1024);
        assert_eq!(
            CacheConfig::l3_coffee_lake().capacity_bytes(),
            8 * 1024 * 1024
        );
    }

    #[test]
    fn lines_map_to_disjoint_sets() {
        let c = Cache::new(CacheConfig::l1d_coffee_lake());
        // Lines differing only above the index bits share a set.
        assert_eq!(c.set_index(LineAddr(5)), c.set_index(LineAddr(5 + 64)));
        assert_ne!(c.set_index(LineAddr(5)), c.set_index(LineAddr(6)));
    }

    #[test]
    fn access_fill_probe_roundtrip() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x123);
        assert!(!c.probe(l));
        assert!(!c.access(l));
        c.fill(l);
        assert!(c.probe(l));
        assert!(c.access(l));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn lookup_returns_the_way_the_fill_used() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x40);
        assert_eq!(c.lookup(l), None);
        let out = c.fill(l);
        assert_eq!(c.lookup(l), Some(out.way));
    }

    #[test]
    fn conflict_evictions_counted() {
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            hit_latency: 1,
            replacement: ReplacementKind::Lru,
            seed: 0,
        };
        let mut c = Cache::new(cfg);
        // Three lines in the same set of a 2-way cache.
        for i in 0..3u64 {
            c.fill(LineAddr(i * 2));
        }
        assert_eq!(c.stats().evictions, 1);
        assert!(!c.probe(LineAddr(0)), "LRU victim was line 0");
    }

    #[test]
    fn invalidate_then_probe_misses() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x55);
        c.fill(l);
        assert!(c.invalidate(l));
        assert!(!c.probe(l));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        c.fill(LineAddr(1));
        c.access(LineAddr(1));
        c.clear();
        assert!(!c.probe(LineAddr(1)));
        assert_eq!(c.stats(), &CacheStats::default());
    }

    #[test]
    fn set_view_reports_contents_in_way_order() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        // Two lines mapping to set 3 (stride = 64 lines).
        c.fill(LineAddr(3));
        c.fill(LineAddr(3 + 64));
        let view = c.set(3);
        assert_eq!(view.occupancy(), 2);
        assert_eq!(view.way_of(LineAddr(3)), Some(0));
        assert_eq!(view.way_of(LineAddr(3 + 64)), Some(1));
        assert!(view.contains(LineAddr(3)));
        assert_eq!(
            view.resident_lines().collect::<Vec<_>>(),
            vec![LineAddr(3), LineAddr(3 + 64)]
        );
        assert_eq!(view.eviction_candidate(), None, "set not full yet");
    }
}
