//! A single set-associative cache level.

use crate::addr::LineAddr;
use crate::replacement::ReplacementKind;
use crate::set::{CacheSet, FillOutcome};
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};

/// Geometry and policy of one cache level.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Load-to-use latency in cycles when this level hits.
    pub hit_latency: u64,
    /// Replacement policy for every set.
    pub replacement: ReplacementKind,
    /// Base RNG seed (per-set seeds are derived from it; only meaningful for
    /// stochastic policies).
    pub seed: u64,
}

impl CacheConfig {
    /// 32 KB, 8-way, 64-set L1D with tree-PLRU at 4-cycle latency — the
    /// paper's Coffee Lake evaluation machine.
    pub fn l1d_coffee_lake() -> Self {
        CacheConfig {
            sets: 64,
            ways: 8,
            hit_latency: 4,
            replacement: ReplacementKind::TreePlru,
            seed: 0x11d,
        }
    }

    /// 256 KB, 4-way, 1024-set unified L2 at 12-cycle latency.
    pub fn l2_coffee_lake() -> Self {
        CacheConfig {
            sets: 1024,
            ways: 4,
            hit_latency: 12,
            replacement: ReplacementKind::TreePlru,
            seed: 0x12,
        }
    }

    /// Shared L3 at 40-cycle latency. The paper's machine has a 9 MB 12-way
    /// LLC; we round to 8 MB / 16-way / 8192 sets to keep power-of-two
    /// indexing and tree-PLRU's power-of-two way requirement. Capacity class
    /// and inclusivity — the properties the attacks rely on — are preserved.
    pub fn l3_coffee_lake() -> Self {
        CacheConfig {
            sets: 8192,
            ways: 16,
            hit_latency: 40,
            replacement: ReplacementKind::TreePlru,
            seed: 0x13,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * crate::LINE_BYTES
    }
}

/// A single cache level: tag arrays, per-set replacement state and counters.
///
/// ```
/// use racer_mem::{Cache, CacheConfig, LineAddr};
/// let mut l1 = Cache::new(CacheConfig::l1d_coffee_lake());
/// let line = LineAddr(0x40);
/// assert!(!l1.access(line));      // cold miss
/// l1.fill(line);
/// assert!(l1.access(line));       // now hits
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<CacheSet>,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sets` is not a power of two or `cfg.ways` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(cfg.ways >= 1, "need at least one way");
        let sets = (0..cfg.sets)
            .map(|i| {
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64);
                CacheSet::new(cfg.replacement.build(cfg.ways, seed))
            })
            .collect();
        Cache {
            cfg,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Set index for `line`.
    pub fn set_index(&self, line: LineAddr) -> usize {
        line.set_index(self.cfg.sets)
    }

    /// Whether `line` is resident, without touching replacement state.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].contains(line)
    }

    /// Demand access: returns `true` on hit (updating replacement state),
    /// `false` on miss (*without* filling — the hierarchy decides fills).
    pub fn access(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        if self.sets[idx].touch(line) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Insert `line`, returning the eviction outcome.
    pub fn fill(&mut self, line: LineAddr) -> FillOutcome {
        let idx = self.set_index(line);
        let out = self.sets[idx].fill(line);
        self.stats.fills += 1;
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        out
    }

    /// Insert `line` with a non-temporal hint (placed at eviction-candidate
    /// priority; paper §6.3.1 footnote 7).
    pub fn fill_low_priority(&mut self, line: LineAddr) -> FillOutcome {
        let idx = self.set_index(line);
        let out = self.sets[idx].fill_low_priority(line);
        self.stats.fills += 1;
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        out
    }

    /// Remove `line` if resident (flush / back-invalidation).
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let hit = self.sets[idx].invalidate(line);
        if hit {
            self.stats.invalidations += 1;
        }
        hit
    }

    /// Direct read access to a set, for diagnostics and tests.
    pub fn set(&self, index: usize) -> &CacheSet {
        &self.sets[index]
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.cfg.sets
    }

    /// Event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset counters (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Empty every set and reset all replacement state and counters.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_coffee_lake() {
        assert_eq!(CacheConfig::l1d_coffee_lake().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l2_coffee_lake().capacity_bytes(), 256 * 1024);
        assert_eq!(
            CacheConfig::l3_coffee_lake().capacity_bytes(),
            8 * 1024 * 1024
        );
    }

    #[test]
    fn lines_map_to_disjoint_sets() {
        let c = Cache::new(CacheConfig::l1d_coffee_lake());
        // Lines differing only above the index bits share a set.
        assert_eq!(c.set_index(LineAddr(5)), c.set_index(LineAddr(5 + 64)));
        assert_ne!(c.set_index(LineAddr(5)), c.set_index(LineAddr(6)));
    }

    #[test]
    fn access_fill_probe_roundtrip() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x123);
        assert!(!c.probe(l));
        assert!(!c.access(l));
        c.fill(l);
        assert!(c.probe(l));
        assert!(c.access(l));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn conflict_evictions_counted() {
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            hit_latency: 1,
            replacement: ReplacementKind::Lru,
            seed: 0,
        };
        let mut c = Cache::new(cfg);
        // Three lines in the same set of a 2-way cache.
        for i in 0..3u64 {
            c.fill(LineAddr(i * 2));
        }
        assert_eq!(c.stats().evictions, 1);
        assert!(!c.probe(LineAddr(0)), "LRU victim was line 0");
    }

    #[test]
    fn invalidate_then_probe_misses() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        let l = LineAddr(0x55);
        c.fill(l);
        assert!(c.invalidate(l));
        assert!(!c.probe(l));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = Cache::new(CacheConfig::l1d_coffee_lake());
        c.fill(LineAddr(1));
        c.access(LineAddr(1));
        c.clear();
        assert!(!c.probe(LineAddr(1)));
        assert_eq!(c.stats(), &CacheStats::default());
    }
}
