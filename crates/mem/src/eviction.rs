//! Ground-truth eviction-set helpers.
//!
//! The §7.4 attack *discovers* eviction sets using only the Hacky-Racers
//! timer; these helpers construct congruent address groups from the
//! simulator's omniscient view, so tests can validate what the attack found.

use crate::addr::{Addr, LineAddr, LINE_BYTES};
use crate::cache::Cache;

/// Page size used when emulating the attacker's knowledge boundary: inside a
/// page the attacker knows the address bits (page offset), above it they do
/// not (JavaScript heap virtual-physical mapping is opaque).
pub const PAGE_BYTES: u64 = 4096;

/// Generate `count` byte addresses whose lines all map to `set` of `cache`,
/// starting at `base` and walking upward in whole cache-size strides.
///
/// Useful for preparing the exact per-set states that the PLRU and
/// arbitrary-replacement magnifiers need.
///
/// ```
/// use racer_mem::{same_l1_set_addresses, Cache, CacheConfig, Addr};
/// let l1 = Cache::new(CacheConfig::l1d_coffee_lake());
/// let addrs = same_l1_set_addresses(&l1, 5, 10, Addr(0));
/// for a in &addrs {
///     assert_eq!(l1.set_index(a.line()), 5);
/// }
/// ```
pub fn same_l1_set_addresses(cache: &Cache, set: usize, count: usize, base: Addr) -> Vec<Addr> {
    assert!(set < cache.num_sets(), "set index out of range");
    let stride_lines = cache.num_sets() as u64;
    let base_line = base.line().0 - (base.line().0 % stride_lines) + set as u64;
    (0..count as u64)
        .map(|i| LineAddr(base_line + i * stride_lines).base_addr())
        .collect()
}

/// Generate `count` addresses mapping to L3 set `set`, spaced a whole L3
/// index-range apart, starting at or above `base`.
pub fn addresses_mapping_to_l3_set(l3: &Cache, set: usize, count: usize, base: Addr) -> Vec<Addr> {
    same_l1_set_addresses(l3, set, count, base)
}

/// Build the candidate pool an attacker realistically starts from when
/// profiling LLC eviction sets (paper §7.4): `count` page-aligned addresses
/// with identical page offset `offset`, at consecutive page-sized strides
/// from `base`. Their page-offset bits are known to the attacker; their
/// upper bits (and therefore LLC set) are not.
///
/// # Panics
///
/// Panics if `offset >= PAGE_BYTES` or `offset` is not line-aligned.
pub fn candidate_pool(base: Addr, count: usize, offset: u64) -> Vec<Addr> {
    assert!(offset < PAGE_BYTES, "offset must lie within a page");
    assert_eq!(offset % LINE_BYTES, 0, "offset must be line-aligned");
    let page_base = base.0 - (base.0 % PAGE_BYTES);
    (0..count as u64)
        .map(|i| Addr(page_base + i * PAGE_BYTES + offset))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    #[test]
    fn l1_set_addresses_are_congruent_and_distinct() {
        let l1 = Cache::new(CacheConfig::l1d_coffee_lake());
        let addrs = same_l1_set_addresses(&l1, 17, 12, Addr(0x4_0000));
        assert_eq!(addrs.len(), 12);
        let mut seen = std::collections::HashSet::new();
        for a in &addrs {
            assert_eq!(l1.set_index(a.line()), 17);
            assert!(seen.insert(a.line()), "lines must be distinct");
        }
    }

    #[test]
    fn l3_set_addresses_map_correctly() {
        let l3 = Cache::new(CacheConfig::l3_coffee_lake());
        let addrs = addresses_mapping_to_l3_set(&l3, 1234, 20, Addr(0));
        for a in &addrs {
            assert_eq!(l3.set_index(a.line()), 1234);
        }
    }

    #[test]
    fn candidate_pool_shares_page_offset() {
        let pool = candidate_pool(Addr(0x12345000), 64, 0x240);
        assert_eq!(pool.len(), 64);
        for a in &pool {
            assert_eq!(a.0 % PAGE_BYTES, 0x240);
        }
        // Pool addresses spread across multiple L3 sets.
        let l3 = Cache::new(CacheConfig::l3_coffee_lake());
        let sets: std::collections::HashSet<_> =
            pool.iter().map(|a| l3.set_index(a.line())).collect();
        assert!(sets.len() > 1, "candidates must straddle several LLC sets");
    }

    #[test]
    #[should_panic]
    fn candidate_pool_rejects_unaligned_offset() {
        let _ = candidate_pool(Addr(0), 4, 33);
    }
}
