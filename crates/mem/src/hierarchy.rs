//! Three-level cache hierarchy: L1D → L2 → inclusive L3 → DRAM.

use crate::addr::{Addr, LineAddr};
use crate::cache::{Cache, CacheConfig};
use crate::stats::HierarchyStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The deepest level that serviced an access.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Ord, PartialOrd, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L2 hit (filled into L1).
    L2,
    /// Last-level-cache hit (filled into L2 and L1).
    L3,
    /// DRAM access (filled into all levels).
    Memory,
}

impl std::fmt::Display for HitLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::L3 => "L3",
            HitLevel::Memory => "DRAM",
        };
        f.write_str(s)
    }
}

/// What kind of access is being performed.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Demand load.
    Load,
    /// Store (allocate-on-write, like the modelled write-back caches).
    Store,
    /// Software prefetch: fills caches, no architectural result.
    Prefetch,
    /// Non-temporal prefetch: fills at eviction-candidate priority
    /// (paper §6.3.1 footnote 7).
    PrefetchNta,
}

/// Result of a hierarchy access.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Deepest level that serviced the access.
    pub level: HitLevel,
    /// Total load-to-use latency in cycles.
    pub latency: u64,
    /// Line displaced from the L1 by the resulting fill, if any.
    pub l1_evicted: Option<LineAddr>,
    /// Line displaced from the L3 (and, by inclusion, back-invalidated from
    /// L1/L2), if any.
    pub l3_evicted: Option<LineAddr>,
}

/// Configuration for a [`Hierarchy`].
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L3 geometry.
    pub l3: CacheConfig,
    /// DRAM latency in cycles (added on top of the L3 lookup).
    pub memory_latency: u64,
    /// Uniform jitter added to DRAM accesses, in cycles (`0` = none).
    /// Models row-buffer/contention noise so experiment distributions are
    /// realistic rather than perfectly crisp.
    pub memory_jitter: u64,
    /// Whether the L3 is inclusive of L1/L2 (true on the paper's Intel
    /// machine; the eviction-set attack of §7.4 relies on it).
    pub inclusive_l3: bool,
    /// Seed for DRAM jitter.
    pub seed: u64,
}

impl HierarchyConfig {
    /// The paper's Intel i7-8750H-like memory system.
    pub fn coffee_lake() -> Self {
        HierarchyConfig {
            l1d: CacheConfig::l1d_coffee_lake(),
            l2: CacheConfig::l2_coffee_lake(),
            l3: CacheConfig::l3_coffee_lake(),
            memory_latency: 200,
            memory_jitter: 0,
            inclusive_l3: true,
            seed: 0xD12A,
        }
    }

    /// Coffee-Lake-like system with DRAM jitter enabled (for experiments
    /// that need realistic noise in their distributions).
    pub fn coffee_lake_noisy(seed: u64) -> Self {
        HierarchyConfig {
            memory_jitter: 30,
            seed,
            ..Self::coffee_lake()
        }
    }

    /// A small hierarchy (4-way PLRU L1 with 16 sets) used by the PLRU
    /// magnifier experiments, matching the paper's W = 4 illustration in
    /// Figures 3 and 4.
    pub fn small_plru() -> Self {
        let mut cfg = Self::coffee_lake();
        cfg.l1d = CacheConfig {
            sets: 16,
            ways: 4,
            ..CacheConfig::l1d_coffee_lake()
        };
        cfg
    }
}

/// A three-level data-cache hierarchy with flush, prefetch and inclusive
/// back-invalidation.
///
/// State updates happen at access time ("fill at issue"): the caller (the
/// CPU model) is responsible for scheduling *when* accesses are issued, so
/// the order of calls here is the order of cache fills — exactly the
/// property the paper's reorder racing gadget (§5.2) transmits through.
///
/// Cloning a `Hierarchy` is cheap and copy-on-write: each level's storage
/// is chunked behind shared `Arc`s (see [`crate::Cache`]), so a clone
/// copies chunk pointers and only materialises private chunks as its
/// access stream diverges from the original's. The batch engine forks its
/// lanes this way and sizes lockstep slices from
/// [`Hierarchy::private_bytes_vs`].
///
/// ```
/// use racer_mem::{Addr, Hierarchy, HierarchyConfig, HitLevel};
/// let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
/// let a = Addr(0x4000);
/// assert_eq!(h.load(a).level, HitLevel::Memory);
/// assert_eq!(h.load(a).level, HitLevel::L1);
/// h.flush(a);
/// assert_eq!(h.load(a).level, HitLevel::Memory);
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    rng: StdRng,
    memory_accesses: u64,
    flushes: u64,
    prefetches: u64,
}

impl Hierarchy {
    /// Build a hierarchy from `cfg`.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            memory_accesses: 0,
            flushes: 0,
            prefetches: 0,
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Perform an access of `kind` to `addr`, updating all cache state and
    /// returning the serviced level and latency.
    #[inline]
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        let line = addr.line();
        if matches!(kind, AccessKind::Prefetch | AccessKind::PrefetchNta) {
            self.prefetches += 1;
        }

        // L1-hit fast path: the single tag lookup's way is reused for the
        // replacement update, and none of the L2/L3 lookup, fill or
        // eviction plumbing below is touched. This is the overwhelmingly
        // common case for every workload the simulator runs.
        if let Some(way) = self.l1d.lookup(line) {
            self.l1d.record_hit(line, way);
            return AccessOutcome {
                level: HitLevel::L1,
                latency: self.l1d.hit_latency(),
                l1_evicted: None,
                l3_evicted: None,
            };
        }
        self.l1d.record_miss();
        self.access_miss(line, kind)
    }

    /// The L1-miss slow path: walk L2 → L3 → DRAM, performing the fills and
    /// (for an inclusive L3) back-invalidations.
    fn access_miss(&mut self, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        let low_priority = matches!(kind, AccessKind::PrefetchNta);

        // L2 hit?
        if self.l2.access(line) {
            let l1_evicted = self.fill_l1(line, low_priority);
            return AccessOutcome {
                level: HitLevel::L2,
                latency: self.l2.hit_latency(),
                l1_evicted,
                l3_evicted: None,
            };
        }

        // L3 hit?
        if self.l3.access(line) {
            self.l2.fill(line);
            let l1_evicted = self.fill_l1(line, low_priority);
            return AccessOutcome {
                level: HitLevel::L3,
                latency: self.l3.hit_latency(),
                l1_evicted,
                l3_evicted: None,
            };
        }

        // DRAM.
        self.memory_accesses += 1;
        let jitter = if self.cfg.memory_jitter > 0 {
            self.rng.gen_range(0..=self.cfg.memory_jitter)
        } else {
            0
        };
        let latency = self.l3.hit_latency() + self.cfg.memory_latency + jitter;
        let l3_evicted = self.fill_l3(line);
        self.l2.fill(line);
        let l1_evicted = self.fill_l1(line, low_priority);
        AccessOutcome {
            level: HitLevel::Memory,
            latency,
            l1_evicted,
            l3_evicted,
        }
    }

    /// Demand load of `addr`.
    pub fn load(&mut self, addr: Addr) -> AccessOutcome {
        self.access(addr, AccessKind::Load)
    }

    /// Store to `addr` (write-allocate).
    pub fn store(&mut self, addr: Addr) -> AccessOutcome {
        self.access(addr, AccessKind::Store)
    }

    /// Software prefetch of `addr`.
    pub fn prefetch(&mut self, addr: Addr) -> AccessOutcome {
        self.access(addr, AccessKind::Prefetch)
    }

    fn fill_l1(&mut self, line: LineAddr, low_priority: bool) -> Option<LineAddr> {
        let out = if low_priority {
            self.l1d.fill_low_priority(line)
        } else {
            self.l1d.fill(line)
        };
        out.evicted
    }

    fn fill_l3(&mut self, line: LineAddr) -> Option<LineAddr> {
        let out = self.l3.fill(line);
        if let Some(victim) = out.evicted {
            if self.cfg.inclusive_l3 {
                // Inclusive LLC: evicting a line removes it everywhere.
                self.l2.invalidate(victim);
                self.l1d.invalidate(victim);
            }
        }
        out.evicted
    }

    /// Remove `addr`'s line from every level (a `clflush` analogue; not
    /// reachable from the JavaScript threat model, but needed for baselines
    /// such as classic Flush+Reload in §7.1).
    pub fn flush(&mut self, addr: Addr) {
        let line = addr.line();
        self.flushes += 1;
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
        self.l3.invalidate(line);
    }

    /// L1 way holding `addr`'s line, if resident — the single stateless
    /// lookup whose result [`Hierarchy::access_l1_hit`] /
    /// [`Hierarchy::access_l1_miss`] reuse, so callers that must first
    /// classify the access (MSHR admission in the CPU's load port) pay one
    /// tag scan instead of a probe *and* an access walk.
    #[inline]
    pub fn lookup_l1(&self, addr: Addr) -> Option<usize> {
        self.l1d.lookup(addr.line())
    }

    /// Complete a demand access already known — via [`Hierarchy::lookup_l1`]
    /// — to hit the L1 in `way`: updates replacement state and counters
    /// without re-scanning the tags, and touches no deeper level.
    #[inline]
    pub fn access_l1_hit(&mut self, addr: Addr, way: usize) -> AccessOutcome {
        self.l1d.record_hit(addr.line(), way);
        AccessOutcome {
            level: HitLevel::L1,
            latency: self.l1d.hit_latency(),
            l1_evicted: None,
            l3_evicted: None,
        }
    }

    /// Complete a demand access already known — via [`Hierarchy::lookup_l1`]
    /// returning `None` — to miss the L1: records the miss and walks the
    /// deeper levels without re-scanning the L1 tags.
    #[inline]
    pub fn access_l1_miss(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        if matches!(kind, AccessKind::Prefetch | AccessKind::PrefetchNta) {
            self.prefetches += 1;
        }
        debug_assert!(!self.l1d.probe(addr.line()), "access_l1_miss on a hit");
        self.l1d.record_miss();
        self.access_miss(addr.line(), kind)
    }

    /// Deepest level currently holding `addr`, without touching any state.
    pub fn probe(&self, addr: Addr) -> HitLevel {
        let line = addr.line();
        if self.l1d.probe(line) {
            HitLevel::L1
        } else if self.l2.probe(line) {
            HitLevel::L2
        } else if self.l3.probe(line) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        }
    }

    /// Latency an access to `addr` *would* observe right now, without
    /// changing any state (used by delay-on-miss-style countermeasures and
    /// by tests).
    pub fn peek_latency(&self, addr: Addr) -> u64 {
        match self.probe(addr) {
            HitLevel::L1 => self.l1d.hit_latency(),
            HitLevel::L2 => self.l2.hit_latency(),
            HitLevel::L3 => self.l3.hit_latency(),
            HitLevel::Memory => self.l3.hit_latency() + self.cfg.memory_latency,
        }
    }

    /// The L1 data cache (read-only).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L2 cache (read-only).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The L3 cache (read-only).
    pub fn l3(&self) -> &Cache {
        &self.l3
    }

    /// Mutable access to the L1, for experiments that prepare exact set
    /// states (e.g. the PLRU magnifier's initial condition).
    pub fn l1d_mut(&mut self) -> &mut Cache {
        &mut self.l1d
    }

    /// Heap bytes of cache storage this hierarchy does **not** share with
    /// `base`: the private chunks a copy-on-write clone has materialised
    /// since it was forked. Against the snapshot it came from, this is the
    /// clone's real cache-state memory footprint — what the batch engine's
    /// slice schedule sums per lane to estimate host-cache pressure.
    pub fn private_bytes_vs(&self, base: &Hierarchy) -> usize {
        self.l1d.private_bytes_vs(&base.l1d)
            + self.l2.private_bytes_vs(&base.l2)
            + self.l3.private_bytes_vs(&base.l3)
    }

    /// Materialise private copies of all still-shared cache chunks, making
    /// this hierarchy's storage fully independent of any clone (the eager
    /// deep copy the copy-on-write clone otherwise avoids). Observable
    /// state is unchanged.
    pub fn unshare(&mut self) {
        self.l1d.unshare();
        self.l2.unshare();
        self.l3.unshare();
    }

    /// Aggregated counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            l3: *self.l3.stats(),
            memory_accesses: self.memory_accesses,
            flushes: self.flushes,
            prefetches: self.prefetches,
        }
    }

    /// Reset counters, preserving cache contents.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.memory_accesses = 0;
        self.flushes = 0;
        self.prefetches = 0;
    }

    /// Empty all caches and counters.
    pub fn clear(&mut self) {
        self.l1d.clear();
        self.l2.clear();
        self.l3.clear();
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::coffee_lake())
    }

    #[test]
    fn miss_then_hit_ladder() {
        let mut h = quiet();
        let a = Addr(0x10000);
        let m = h.load(a);
        assert_eq!(m.level, HitLevel::Memory);
        assert_eq!(m.latency, 240); // 40 (L3 lookup) + 200 DRAM
        assert_eq!(h.load(a).level, HitLevel::L1);
        assert_eq!(h.load(a).latency, 4);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = quiet();
        let a = Addr(0x10000);
        h.load(a);
        // Evict from L1 by filling its set with 8 more lines (L1: 64 sets,
        // so stride = 64 lines * 64 bytes).
        for i in 1..=8u64 {
            h.load(Addr(0x10000 + i * 64 * 64));
        }
        let lvl = h.probe(a);
        assert!(
            lvl == HitLevel::L2 || lvl == HitLevel::L3,
            "expected L2/L3, got {lvl}"
        );
        let out = h.load(a);
        assert_ne!(out.level, HitLevel::Memory);
        assert_ne!(out.level, HitLevel::L1);
    }

    #[test]
    fn flush_removes_all_levels() {
        let mut h = quiet();
        let a = Addr(0x2000);
        h.load(a);
        assert_eq!(h.probe(a), HitLevel::L1);
        h.flush(a);
        assert_eq!(h.probe(a), HitLevel::Memory);
        assert_eq!(h.stats().flushes, 1);
    }

    #[test]
    fn inclusive_l3_back_invalidates() {
        // Tiny inclusive L3 so we can force LLC evictions easily.
        let mut cfg = HierarchyConfig::coffee_lake();
        cfg.l3 = CacheConfig {
            sets: 2,
            ways: 2,
            hit_latency: 40,
            replacement: crate::ReplacementKind::Lru,
            seed: 0,
        };
        let mut h = Hierarchy::new(cfg);
        let a = Addr(0); // L3 set 0
        h.load(a);
        assert_eq!(h.probe(a), HitLevel::L1);
        // Two more lines in L3 set 0 (L3 stride = 2 lines) evict `a` from L3…
        h.load(Addr(2 * 64));
        let out = h.load(Addr(4 * 64));
        assert_eq!(out.l3_evicted, Some(Addr(0).line()));
        // …and by inclusion from the L1 too, even though its L1 set differs.
        assert_eq!(h.probe(a), HitLevel::Memory);
    }

    #[test]
    fn non_inclusive_l3_does_not_back_invalidate() {
        let mut cfg = HierarchyConfig::coffee_lake();
        cfg.l3 = CacheConfig {
            sets: 2,
            ways: 2,
            hit_latency: 40,
            replacement: crate::ReplacementKind::Lru,
            seed: 0,
        };
        cfg.inclusive_l3 = false;
        let mut h = Hierarchy::new(cfg);
        let a = Addr(0);
        h.load(a);
        h.load(Addr(2 * 64));
        h.load(Addr(4 * 64));
        assert_eq!(
            h.probe(a),
            HitLevel::L1,
            "non-inclusive L3 eviction must not touch L1"
        );
    }

    #[test]
    fn prefetch_fills_like_a_load() {
        let mut h = quiet();
        let a = Addr(0x3000);
        h.prefetch(a);
        assert_eq!(h.probe(a), HitLevel::L1);
        assert_eq!(h.stats().prefetches, 1);
    }

    #[test]
    fn nta_prefetch_is_first_victim() {
        let mut h = quiet();
        // Fill L1 set 0 completely with normal loads (stride 64 lines).
        for i in 0..8u64 {
            h.load(Addr(i * 64 * 64));
        }
        // NTA-prefetch a 9th line into the same set: it evicts something,
        // and becomes the set's eviction candidate itself.
        let nta = Addr(8 * 64 * 64);
        h.access(nta, AccessKind::PrefetchNta);
        let set = h.l1d().set(0);
        assert_eq!(set.eviction_candidate(), Some(nta.line()));
    }

    #[test]
    fn memory_jitter_varies_latency() {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake_noisy(1));
        let mut latencies = std::collections::HashSet::new();
        for i in 0..50u64 {
            let out = h.load(Addr(0x100000 + i * 4096 * 16));
            assert_eq!(out.level, HitLevel::Memory);
            latencies.insert(out.latency);
        }
        assert!(
            latencies.len() > 3,
            "jitter should produce varied DRAM latencies"
        );
    }

    #[test]
    fn peek_latency_matches_real_access() {
        let mut h = quiet();
        let a = Addr(0x9000);
        assert_eq!(h.peek_latency(a), 240);
        let out = h.load(a);
        assert_eq!(out.latency, 240);
        assert_eq!(h.peek_latency(a), 4);
    }

    #[test]
    fn clear_restores_cold_state() {
        let mut h = quiet();
        h.load(Addr(0x1234));
        h.clear();
        assert_eq!(h.probe(Addr(0x1234)), HitLevel::Memory);
        assert_eq!(h.stats().l1d.accesses(), 0);
    }
}
