//! # racer-mem — cache hierarchy substrate for Hacky Racers
//!
//! A set-associative cache-hierarchy simulator with pluggable replacement
//! policies, built to reproduce the cache-state arguments of the ASPLOS 2023
//! paper *"Hacky Racers: Exploiting Instruction-Level Parallelism to Generate
//! Stealthy Fine-Grained Timers"* (Xiao & Ainsworth).
//!
//! The paper's magnifier gadgets are, at their heart, arguments about cache
//! replacement state machines:
//!
//! * the **tree-PLRU magnifiers** (paper §6.1, §6.2, Figures 3 and 4) rely on
//!   the binary-tree pseudo-LRU policy never evicting a *protected* line while
//!   a carefully chosen access pattern misses every other access;
//! * the **arbitrary-replacement magnifier** (paper §6.3, Figure 5) relies
//!   only on "filling `PAR_i` probably evicts a member of `SEQ_i`", which
//!   holds for *any* policy including random replacement;
//! * the **LLC eviction-set attack** (paper §7.4) relies on an inclusive
//!   last-level cache back-invalidating lines from the L1.
//!
//! This crate provides exactly those mechanisms:
//!
//! * [`replacement`] — the [`ReplacementPolicy`] trait and five concrete
//!   policies: [`TreePlru`], [`Lru`], [`RandomReplacement`], [`Fifo`],
//!   [`Srrip`] — plus a packed struct-of-arrays re-encoding of each that
//!   the flattened [`Cache`] dispatches on.
//! * [`cache`] — a single set-associative cache level, stored
//!   struct-of-arrays (contiguous tags, per-set valid bitmasks, packed
//!   replacement state) for the simulator's hot paths.
//! * [`set`] — the boxed-policy single-set model, retained as the readable
//!   reference implementation and for experiments that reason about one
//!   set in isolation; `crates/mem/tests/differential.rs` pins it
//!   bit-identical to the flattened model.
//! * [`hierarchy`] — a three-level hierarchy (L1D → L2 → inclusive L3 → DRAM)
//!   with flush, prefetch, back-invalidation and an early-exit L1-hit fast
//!   path.
//! * [`eviction`] — ground-truth helpers for constructing congruent address
//!   sets (used to *validate* the attack-generated eviction sets).
//!
//! ## Quickstart
//!
//! ```
//! use racer_mem::{Addr, Hierarchy, HierarchyConfig, HitLevel};
//!
//! let mut hier = Hierarchy::new(HierarchyConfig::coffee_lake());
//! let a = Addr(0x1000);
//! let first = hier.load(a);
//! assert_eq!(first.level, HitLevel::Memory); // cold miss goes to DRAM
//! let second = hier.load(a);
//! assert_eq!(second.level, HitLevel::L1);    // now L1-resident
//! assert!(second.latency < first.latency);
//! ```

pub mod addr;
pub mod cache;
pub mod eviction;
pub mod hierarchy;
pub mod replacement;
pub mod set;
pub mod stats;

pub use addr::{Addr, LineAddr, LINE_BYTES};
pub use cache::{Cache, CacheConfig, SetView};
pub use eviction::{addresses_mapping_to_l3_set, candidate_pool, same_l1_set_addresses};
pub use hierarchy::{AccessKind, AccessOutcome, Hierarchy, HierarchyConfig, HitLevel};
pub use replacement::{
    Fifo, Lru, RandomReplacement, ReplacementKind, ReplacementPolicy, Srrip, TreePlru,
};
pub use set::{CacheSet, FillOutcome};
pub use stats::{CacheStats, HierarchyStats};
