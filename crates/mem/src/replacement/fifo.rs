//! First-in first-out (round-robin) replacement.

use super::ReplacementPolicy;

/// FIFO replacement: lines are evicted in the order they were filled,
/// regardless of hits.
///
/// Included to demonstrate the paper's claim that the arbitrary-replacement
/// magnifier (§6.3) does not depend on recency state at all.
///
/// ```
/// use racer_mem::{Fifo, ReplacementPolicy};
/// let mut p = Fifo::new(4);
/// for w in 0..4 { p.on_fill(w); }
/// p.on_hit(0); // hits do not refresh FIFO order
/// assert_eq!(p.peek_victim(), 0);
/// ```
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Fifo {
    /// `queue[0]` is the oldest fill (the victim).
    queue: Vec<usize>,
}

impl Fifo {
    /// Create a FIFO instance for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways >= 1, "FIFO needs at least one way");
        Fifo {
            queue: (0..ways).collect(),
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn ways(&self) -> usize {
        self.queue.len()
    }

    fn on_hit(&mut self, _way: usize) {
        // FIFO ignores hits by definition.
    }

    fn on_fill(&mut self, way: usize) {
        let pos = self
            .queue
            .iter()
            .position(|&w| w == way)
            .expect("way out of range for this FIFO instance");
        self.queue.remove(pos);
        self.queue.push(way); // newest at the back
    }

    fn victim(&mut self) -> usize {
        self.queue[0]
    }

    fn peek_victim(&self) -> usize {
        self.queue[0]
    }

    fn on_invalidate(&mut self, way: usize) {
        // Invalidated ways should be refilled first: move to victim position.
        let pos = self
            .queue
            .iter()
            .position(|&w| w == way)
            .expect("way out of range for this FIFO instance");
        self.queue.remove(pos);
        self.queue.insert(0, way);
    }

    fn reset(&mut self) {
        let ways = self.queue.len();
        self.queue = (0..ways).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_fill_order() {
        let mut p = Fifo::new(3);
        p.on_fill(2);
        p.on_fill(0);
        p.on_fill(1);
        assert_eq!(p.victim(), 2);
        p.on_fill(2); // refill 2; now oldest is 0
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn hits_do_not_matter() {
        let mut p = Fifo::new(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        for _ in 0..10 {
            p.on_hit(0);
        }
        assert_eq!(p.peek_victim(), 0);
    }

    #[test]
    fn invalidate_moves_to_front() {
        let mut p = Fifo::new(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_invalidate(2);
        assert_eq!(p.peek_victim(), 2);
    }
}
