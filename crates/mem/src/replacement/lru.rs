//! True least-recently-used replacement.

use super::ReplacementPolicy;

/// Exact LRU: the victim is always the way touched longest ago.
///
/// Used as a reference policy for differential testing against
/// [`TreePlru`](super::TreePlru) (with which it agrees for 2 ways) and to
/// show which magnifier gadgets survive a switch away from tree-PLRU.
///
/// ```
/// use racer_mem::{Lru, ReplacementPolicy};
/// let mut p = Lru::new(4);
/// for w in 0..4 { p.on_fill(w); }
/// p.on_hit(0);
/// assert_eq!(p.peek_victim(), 1); // way 1 is now the coldest
/// ```
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Lru {
    /// `order[0]` is most-recently-used; `order.last()` is the victim.
    order: Vec<usize>,
}

impl Lru {
    /// Create an LRU instance for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways >= 1, "LRU needs at least one way");
        Lru {
            order: (0..ways).collect(),
        }
    }

    fn promote(&mut self, way: usize) {
        let pos = self
            .order
            .iter()
            .position(|&w| w == way)
            .expect("way out of range for this LRU instance");
        self.order.remove(pos);
        self.order.insert(0, way);
    }

    fn demote(&mut self, way: usize) {
        let pos = self
            .order
            .iter()
            .position(|&w| w == way)
            .expect("way out of range for this LRU instance");
        self.order.remove(pos);
        self.order.push(way);
    }
}

impl ReplacementPolicy for Lru {
    fn ways(&self) -> usize {
        self.order.len()
    }

    fn on_hit(&mut self, way: usize) {
        self.promote(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.promote(way);
    }

    fn on_fill_low_priority(&mut self, way: usize) {
        // Non-temporal data is inserted at LRU position (classic NT hint).
        self.demote(way);
    }

    fn victim(&mut self) -> usize {
        *self.order.last().expect("LRU always has at least one way")
    }

    fn peek_victim(&self) -> usize {
        *self.order.last().expect("LRU always has at least one way")
    }

    fn on_invalidate(&mut self, way: usize) {
        // An invalidated way becomes the coldest so it is reused first if
        // the set layer ever consults the policy with empty ways around.
        self.demote(way);
    }

    fn reset(&mut self) {
        let ways = self.order.len();
        self.order = (0..ways).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_least_recently_used() {
        let mut p = Lru::new(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        // MRU order now 3,2,1,0; victim = 0.
        assert_eq!(p.peek_victim(), 0);
        p.on_hit(0);
        assert_eq!(p.peek_victim(), 1);
        p.on_hit(1);
        p.on_hit(2);
        assert_eq!(p.peek_victim(), 3);
    }

    #[test]
    fn fill_promotes_to_mru() {
        let mut p = Lru::new(2);
        p.on_fill(0);
        p.on_fill(1);
        assert_eq!(p.victim(), 0);
        p.on_fill(0);
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn low_priority_fill_is_immediate_victim() {
        let mut p = Lru::new(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_fill_low_priority(2);
        assert_eq!(p.peek_victim(), 2);
    }

    #[test]
    fn invalidate_demotes() {
        let mut p = Lru::new(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_invalidate(3); // 3 was MRU
        assert_eq!(p.peek_victim(), 3);
    }

    #[test]
    fn agrees_with_tree_plru_for_two_ways() {
        use crate::replacement::TreePlru;
        let mut lru = Lru::new(2);
        let mut plru = TreePlru::new(2);
        let seq = [0usize, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0];
        for &w in &seq {
            lru.on_hit(w);
            plru.on_hit(w);
            assert_eq!(lru.peek_victim(), plru.peek_victim());
        }
    }

    #[test]
    fn reset_restores_initial_order() {
        let mut p = Lru::new(3);
        p.on_hit(2);
        p.reset();
        assert_eq!(p, Lru::new(3));
    }
}
