//! Cache replacement policies.
//!
//! The paper's magnifier gadgets are arguments about replacement-policy state
//! machines, so the policies here are first-class, independently testable
//! objects. [`TreePlru`] is the star of the show (paper §6.1/§6.2, Figures 3
//! and 4); [`RandomReplacement`] underpins the arbitrary-replacement magnifier
//! (§6.3); [`Lru`], [`Fifo`] and [`Srrip`] exist to demonstrate the paper's
//! claim that *"changing the replacement policy is no cure"* (§6, §8).
//!
//! Two encodings of the same state machines coexist: the boxed per-set
//! [`ReplacementPolicy`] objects below (the readable reference, used by
//! [`CacheSet`](crate::CacheSet) and the magnifier experiments that reason
//! about one set at a time), and the packed struct-of-arrays
//! `PackedPolicy` (crate-private, in `packed`) that [`Cache`](crate::Cache)
//! dispatches on for the simulator's hot paths. The differential proptest
//! in `crates/mem/tests/differential.rs` keeps them bit-identical.

mod fifo;
mod lru;
mod packed;
mod random;
mod srrip;
mod tree_plru;

pub(crate) use packed::PackedPolicy;

pub use fifo::Fifo;
pub use lru::Lru;
pub use random::RandomReplacement;
pub use srrip::Srrip;
pub use tree_plru::TreePlru;

use serde::{Deserialize, Serialize};

/// Per-set replacement state machine.
///
/// One instance manages one cache set of `ways()` ways. The containing
/// [`CacheSet`](crate::CacheSet) handles tag matching and empty-way
/// preference; the policy only decides *victims* and tracks recency state.
///
/// Implementations in this crate: [`TreePlru`], [`Lru`], [`RandomReplacement`],
/// [`Fifo`], [`Srrip`].
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Number of ways this policy instance manages.
    fn ways(&self) -> usize;

    /// A demand access hit way `way`.
    fn on_hit(&mut self, way: usize);

    /// A line was inserted into `way` (the set had an empty way, or the
    /// victim at `way` was just displaced).
    fn on_fill(&mut self, way: usize);

    /// Like [`on_fill`](Self::on_fill) but with a low-priority insertion hint
    /// (non-temporal prefetch, paper §6.3.1 footnote: such lines are "easier
    /// to be evicted"). The default treats it as a normal fill; policies with
    /// a recency notion override it to insert at eviction-candidate position.
    fn on_fill_low_priority(&mut self, way: usize) {
        self.on_fill(way);
    }

    /// Choose the way to evict for an incoming fill when the set is full.
    ///
    /// Takes `&mut self` so stochastic policies can advance their RNG; the
    /// deterministic policies do not mutate state here (state changes happen
    /// in `on_fill`).
    fn victim(&mut self) -> usize;

    /// Inspect the current eviction candidate *without* advancing any RNG or
    /// other state. For stochastic policies this is a best-effort preview.
    fn peek_victim(&self) -> usize;

    /// The line in `way` was invalidated (flush or back-invalidation).
    fn on_invalidate(&mut self, way: usize);

    /// Reset to the post-construction state.
    fn reset(&mut self);
}

/// Factory enumeration for building per-set policy instances.
///
/// ```
/// use racer_mem::ReplacementKind;
/// let p = ReplacementKind::TreePlru.build(4, 7);
/// assert_eq!(p.ways(), 4);
/// ```
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Binary-tree pseudo-LRU (paper Figures 3–4; "prevalent on modern CPUs").
    TreePlru,
    /// True least-recently-used.
    Lru,
    /// Uniform-random victim selection (paper §6.3's example policy, as in
    /// the Arm1176 the paper cites).
    Random,
    /// First-in first-out (round-robin) replacement.
    Fifo,
    /// Static re-reference interval prediction (2-bit SRRIP).
    Srrip,
}

impl ReplacementKind {
    /// Build a policy instance for one set of `ways` ways.
    ///
    /// `seed` only matters for [`ReplacementKind::Random`]; deterministic
    /// policies ignore it. Callers typically derive a distinct seed per set.
    pub fn build(self, ways: usize, seed: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplacementKind::TreePlru => Box::new(TreePlru::new(ways)),
            ReplacementKind::Lru => Box::new(Lru::new(ways)),
            ReplacementKind::Random => Box::new(RandomReplacement::new(ways, seed)),
            ReplacementKind::Fifo => Box::new(Fifo::new(ways)),
            ReplacementKind::Srrip => Box::new(Srrip::new(ways)),
        }
    }
}

impl std::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ReplacementKind::TreePlru => "tree-plru",
            ReplacementKind::Lru => "lru",
            ReplacementKind::Random => "random",
            ReplacementKind::Fifo => "fifo",
            ReplacementKind::Srrip => "srrip",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(kind: ReplacementKind, ways: usize) {
        let mut p = kind.build(ways, 99);
        assert_eq!(p.ways(), ways);
        // Fill all ways then hit each; victim must always be in range.
        for w in 0..ways {
            p.on_fill(w);
        }
        for w in 0..ways {
            p.on_hit(w);
            assert!(p.peek_victim() < ways);
            assert!(p.victim() < ways);
        }
        p.on_invalidate(0);
        p.reset();
        assert!(p.peek_victim() < ways);
    }

    #[test]
    fn all_policies_stay_in_range() {
        for kind in [
            ReplacementKind::TreePlru,
            ReplacementKind::Lru,
            ReplacementKind::Random,
            ReplacementKind::Fifo,
            ReplacementKind::Srrip,
        ] {
            for ways in [1usize, 2, 4, 8, 16] {
                if kind == ReplacementKind::TreePlru && !ways.is_power_of_two() {
                    continue;
                }
                exercise(kind, ways);
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ReplacementKind::TreePlru.to_string(), "tree-plru");
        assert_eq!(ReplacementKind::Random.to_string(), "random");
    }
}
