//! Packed, enum-dispatched replacement state for the flattened cache model.
//!
//! [`PackedPolicy`] holds the replacement state of *every* set of one cache
//! level in contiguous arrays — one tree-PLRU bit-word per set, one byte per
//! way for the recency/RRPV policies — and dispatches on a plain enum
//! instead of a `Box<dyn ReplacementPolicy>` per set. It is a bit-exact
//! re-encoding of the boxed policies in this module's siblings: every
//! transition (`on_hit`, `on_fill`, `on_fill_low_priority`, `on_invalidate`,
//! `victim`, `peek_victim`, `reset`) produces the same victims in the same
//! order, including the per-set SplitMix64 streams of the random policy.
//! The differential proptest in `crates/mem/tests/differential.rs` pins that
//! equivalence against the retained boxed implementations.

use super::ReplacementKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replacement state for all sets of one cache level, struct-of-arrays.
#[derive(Clone, Debug)]
pub(crate) enum PackedPolicy {
    /// One direction-bit word per set, heap-indexed from bit 1 like
    /// [`TreePlru`](super::TreePlru)'s `bits` vector (bit 0 unused).
    TreePlru { ways: usize, bits: Vec<u64> },
    /// Recency order, `ways` bytes per set; position 0 is MRU, the last
    /// position is the victim (same layout as [`Lru`](super::Lru)'s `order`).
    Lru { ways: usize, order: Vec<u8> },
    /// Fill order, `ways` bytes per set; position 0 is the oldest fill
    /// (the victim), newest at the back.
    Fifo { ways: usize, queue: Vec<u8> },
    /// 2-bit re-reference prediction values, `ways` bytes per set.
    Srrip { ways: usize, rrpv: Vec<u8> },
    /// Per-set SplitMix64 generators with the pre-drawn next victim, so
    /// `peek_victim` previews without advancing the stream — identical
    /// streams to [`RandomReplacement`](super::RandomReplacement) built
    /// from the same derived seeds.
    Random {
        ways: usize,
        rngs: Vec<StdRng>,
        next: Vec<u8>,
    },
}

/// SRRIP constants, mirroring `replacement::srrip`.
const RRPV_MAX: u8 = 3;
const RRPV_INSERT: u8 = 2;

impl PackedPolicy {
    /// Build packed state for `sets` sets of `ways` ways. Per-set random
    /// seeds are derived exactly as [`crate::Cache`] always has:
    /// `base_seed * 0x9E3779B97F4A7C15 + set`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, exceeds 64 (the packed layouts use
    /// byte-indexed ways and one `u64` bit-word per set), or — for
    /// tree-PLRU — is not a power of two.
    #[cfg(test)]
    pub(crate) fn new(kind: ReplacementKind, sets: usize, ways: usize, base_seed: u64) -> Self {
        Self::new_at_offset(kind, sets, ways, base_seed, 0)
    }

    /// [`PackedPolicy::new`] for a *chunk* of a level: state for `sets`
    /// sets whose global indices start at `set_offset`. Local set index 0
    /// here is global set `set_offset`, so random-replacement per-set
    /// seeds — derived from the global index — match a monolithic level
    /// bit-for-bit when chunks are laid side by side.
    pub(crate) fn new_at_offset(
        kind: ReplacementKind,
        sets: usize,
        ways: usize,
        base_seed: u64,
        set_offset: usize,
    ) -> Self {
        assert!(ways >= 1, "need at least one way");
        assert!(
            ways <= 64,
            "packed replacement state supports at most 64 ways"
        );
        match kind {
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU needs a power-of-two way count"
                );
                PackedPolicy::TreePlru {
                    ways,
                    bits: vec![0; sets],
                }
            }
            ReplacementKind::Lru => PackedPolicy::Lru {
                ways,
                order: identity_order(sets, ways),
            },
            ReplacementKind::Fifo => PackedPolicy::Fifo {
                ways,
                queue: identity_order(sets, ways),
            },
            ReplacementKind::Srrip => PackedPolicy::Srrip {
                ways,
                rrpv: vec![RRPV_MAX; sets * ways],
            },
            ReplacementKind::Random => {
                let mut rngs = Vec::with_capacity(sets);
                let mut next = Vec::with_capacity(sets);
                for set in set_offset..set_offset + sets {
                    let seed = base_seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(set as u64);
                    let mut rng = StdRng::seed_from_u64(seed);
                    next.push(rng.gen_range(0..ways) as u8);
                    rngs.push(rng);
                }
                PackedPolicy::Random { ways, rngs, next }
            }
        }
    }

    /// A demand access hit `way` of `set`.
    #[inline]
    pub(crate) fn on_hit(&mut self, set: usize, way: usize) {
        match self {
            PackedPolicy::TreePlru { ways, bits } => plru_touch_away(&mut bits[set], *ways, way),
            PackedPolicy::Lru { ways, order } => promote(order, set, *ways, way),
            PackedPolicy::Fifo { .. } => {}
            PackedPolicy::Srrip { ways, rrpv } => rrpv[set * *ways + way] = 0,
            PackedPolicy::Random { .. } => {}
        }
    }

    /// A line was inserted into `way` of `set`.
    #[inline]
    pub(crate) fn on_fill(&mut self, set: usize, way: usize) {
        match self {
            PackedPolicy::TreePlru { ways, bits } => plru_touch_away(&mut bits[set], *ways, way),
            PackedPolicy::Lru { ways, order } => promote(order, set, *ways, way),
            PackedPolicy::Fifo { ways, queue } => move_to_back(queue, set, *ways, way),
            PackedPolicy::Srrip { ways, rrpv } => rrpv[set * *ways + way] = RRPV_INSERT,
            PackedPolicy::Random { .. } => {}
        }
    }

    /// Non-temporal insertion: the new line becomes (or stays near) the
    /// eviction candidate.
    #[inline]
    pub(crate) fn on_fill_low_priority(&mut self, set: usize, way: usize) {
        match self {
            PackedPolicy::TreePlru { ways, bits } => plru_touch_toward(&mut bits[set], *ways, way),
            PackedPolicy::Lru { ways, order } => demote(order, set, *ways, way),
            // FIFO and random have no low-priority notion: normal fill.
            PackedPolicy::Fifo { ways, queue } => move_to_back(queue, set, *ways, way),
            PackedPolicy::Srrip { ways, rrpv } => rrpv[set * *ways + way] = RRPV_MAX,
            PackedPolicy::Random { .. } => {}
        }
    }

    /// The line in `way` of `set` was invalidated.
    #[inline]
    pub(crate) fn on_invalidate(&mut self, set: usize, way: usize) {
        match self {
            // Tree bits keep their value (matches common hardware).
            PackedPolicy::TreePlru { .. } => {}
            PackedPolicy::Lru { ways, order } => demote(order, set, *ways, way),
            PackedPolicy::Fifo { ways, queue } => move_to_front(queue, set, *ways, way),
            PackedPolicy::Srrip { ways, rrpv } => rrpv[set * *ways + way] = RRPV_MAX,
            PackedPolicy::Random { .. } => {}
        }
    }

    /// Choose the victim way for a fill into a full `set`, advancing any
    /// stochastic state.
    #[inline]
    pub(crate) fn victim(&mut self, set: usize) -> usize {
        match self {
            PackedPolicy::TreePlru { ways, bits } => plru_walk(bits[set], *ways),
            PackedPolicy::Lru { ways, order } => order[set * *ways + *ways - 1] as usize,
            PackedPolicy::Fifo { ways, queue } => queue[set * *ways] as usize,
            PackedPolicy::Srrip { ways, rrpv } => {
                let rrpv = &mut rrpv[set * *ways..(set + 1) * *ways];
                loop {
                    if let Some(w) = rrpv.iter().position(|&v| v == RRPV_MAX) {
                        return w;
                    }
                    for v in rrpv.iter_mut() {
                        *v += 1;
                    }
                }
            }
            PackedPolicy::Random { ways, rngs, next } => {
                let v = next[set] as usize;
                next[set] = rngs[set].gen_range(0..*ways) as u8;
                v
            }
        }
    }

    /// Preview the current eviction candidate without advancing any state.
    #[inline]
    pub(crate) fn peek_victim(&self, set: usize) -> usize {
        match self {
            PackedPolicy::TreePlru { ways, bits } => plru_walk(bits[set], *ways),
            PackedPolicy::Lru { ways, order } => order[set * *ways + *ways - 1] as usize,
            PackedPolicy::Fifo { ways, queue } => queue[set * *ways] as usize,
            PackedPolicy::Srrip { ways, rrpv } => {
                // First way holding the maximum current RRPV (the way that
                // wins after aging), exactly like `Srrip::peek_victim`.
                let rrpv = &rrpv[set * *ways..(set + 1) * *ways];
                let max = *rrpv.iter().max().expect("at least one way");
                rrpv.iter().position(|&v| v == max).expect("max exists")
            }
            PackedPolicy::Random { next, .. } => next[set] as usize,
        }
    }

    /// Approximate heap bytes this policy state occupies — the cost of
    /// materialising a private copy, used by copy-on-write footprint
    /// accounting.
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            PackedPolicy::TreePlru { bits, .. } => std::mem::size_of_val(bits.as_slice()),
            PackedPolicy::Lru { order, .. } => order.len(),
            PackedPolicy::Fifo { queue, .. } => queue.len(),
            PackedPolicy::Srrip { rrpv, .. } => rrpv.len(),
            PackedPolicy::Random { rngs, next, .. } => {
                std::mem::size_of_val(rngs.as_slice()) + next.len()
            }
        }
    }

    /// Reset every set to the post-construction state. Random keeps its RNG
    /// streams — resetting cache contents does not rewind hardware
    /// randomness (mirrors `RandomReplacement::reset`).
    pub(crate) fn reset(&mut self) {
        match self {
            PackedPolicy::TreePlru { bits, .. } => bits.fill(0),
            PackedPolicy::Lru { ways, order } | PackedPolicy::Fifo { ways, queue: order } => {
                let ways = *ways;
                for (i, slot) in order.iter_mut().enumerate() {
                    *slot = (i % ways) as u8;
                }
            }
            PackedPolicy::Srrip { rrpv, .. } => rrpv.fill(RRPV_MAX),
            PackedPolicy::Random { .. } => {}
        }
    }
}

/// `[0, 1, …, ways-1]` repeated per set.
fn identity_order(sets: usize, ways: usize) -> Vec<u8> {
    (0..sets * ways).map(|i| (i % ways) as u8).collect()
}

/// Flip every direction bit on the root→`way` path to point *away* from
/// `way` (the tree-PLRU touch).
#[inline]
fn plru_touch_away(bits: &mut u64, ways: usize, way: usize) {
    debug_assert!(way < ways);
    if ways == 1 {
        return;
    }
    let mut node = way + ways;
    while node > 1 {
        let parent = node / 2;
        // Came from the left child (even heap index) ⇒ point right.
        let b = node.is_multiple_of(2) as u64;
        *bits = (*bits & !(1u64 << parent)) | (b << parent);
        node = parent;
    }
}

/// Point every direction bit on the root→`way` path *toward* `way`, making
/// it the next eviction candidate (non-temporal insertion).
#[inline]
fn plru_touch_toward(bits: &mut u64, ways: usize, way: usize) {
    if ways == 1 {
        return;
    }
    let mut node = way + ways;
    while node > 1 {
        let parent = node / 2;
        let b = (!node.is_multiple_of(2)) as u64;
        *bits = (*bits & !(1u64 << parent)) | (b << parent);
        node = parent;
    }
}

/// Walk the direction bits from the root to the eviction-candidate leaf.
#[inline]
fn plru_walk(bits: u64, ways: usize) -> usize {
    if ways == 1 {
        return 0;
    }
    let mut node = 1usize;
    while node < ways {
        node = 2 * node + ((bits >> node) & 1) as usize;
    }
    node - ways
}

/// Move `way` to the MRU (front) position of its set's order array.
#[inline]
fn promote(order: &mut [u8], set: usize, ways: usize, way: usize) {
    let slice = &mut order[set * ways..(set + 1) * ways];
    let pos = slice
        .iter()
        .position(|&w| w as usize == way)
        .expect("way present in recency order");
    slice.copy_within(0..pos, 1);
    slice[0] = way as u8;
}

/// Move `way` to the victim (back) position of its set's order array.
#[inline]
fn demote(order: &mut [u8], set: usize, ways: usize, way: usize) {
    let slice = &mut order[set * ways..(set + 1) * ways];
    let pos = slice
        .iter()
        .position(|&w| w as usize == way)
        .expect("way present in recency order");
    slice.copy_within(pos + 1..ways, pos);
    slice[ways - 1] = way as u8;
}

/// Move `way` to the back of its set's FIFO queue (newest fill).
#[inline]
fn move_to_back(queue: &mut [u8], set: usize, ways: usize, way: usize) {
    demote(queue, set, ways, way);
}

/// Move `way` to the front of its set's FIFO queue (next victim).
#[inline]
fn move_to_front(queue: &mut [u8], set: usize, ways: usize, way: usize) {
    promote(queue, set, ways, way);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementPolicy;

    /// Every packed policy must track its boxed counterpart transition for
    /// transition under a common pseudo-random driver.
    #[test]
    fn packed_matches_boxed_policies_step_for_step() {
        for kind in [
            ReplacementKind::TreePlru,
            ReplacementKind::Lru,
            ReplacementKind::Random,
            ReplacementKind::Fifo,
            ReplacementKind::Srrip,
        ] {
            for ways in [1usize, 2, 4, 8, 16] {
                let sets = 4usize;
                let base_seed = 0xABCD;
                let mut packed = PackedPolicy::new(kind, sets, ways, base_seed);
                let mut boxed: Vec<Box<dyn ReplacementPolicy>> = (0..sets)
                    .map(|set| {
                        let seed = base_seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(set as u64);
                        kind.build(ways, seed)
                    })
                    .collect();
                let mut x = 12345usize;
                for step in 0..4000 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let set = (x >> 33) % sets;
                    let way = (x >> 13) % ways;
                    match step % 7 {
                        0 | 1 => {
                            packed.on_hit(set, way);
                            boxed[set].on_hit(way);
                        }
                        2 | 3 => {
                            packed.on_fill(set, way);
                            boxed[set].on_fill(way);
                        }
                        4 => {
                            packed.on_fill_low_priority(set, way);
                            boxed[set].on_fill_low_priority(way);
                        }
                        5 => {
                            packed.on_invalidate(set, way);
                            boxed[set].on_invalidate(way);
                        }
                        _ => {
                            assert_eq!(
                                packed.victim(set),
                                boxed[set].victim(),
                                "{kind:?} ways={ways} diverged at step {step}"
                            );
                        }
                    }
                    assert_eq!(
                        packed.peek_victim(set),
                        boxed[set].peek_victim(),
                        "{kind:?} ways={ways} peek diverged at step {step}"
                    );
                }
                packed.reset();
                for p in &mut boxed {
                    p.reset();
                }
                for (set, b) in boxed.iter().enumerate() {
                    assert_eq!(packed.peek_victim(set), b.peek_victim());
                }
            }
        }
    }

    /// Chunked construction (local indices + global set offset) must give
    /// every set exactly the state a monolithic level gives it — in
    /// particular the random policy's global-index-derived seed streams.
    #[test]
    fn offset_chunks_match_monolithic_level() {
        for kind in [
            ReplacementKind::TreePlru,
            ReplacementKind::Lru,
            ReplacementKind::Random,
            ReplacementKind::Fifo,
            ReplacementKind::Srrip,
        ] {
            let (sets, ways, chunk, seed) = (16usize, 4usize, 4usize, 0xBEEF);
            let mut whole = PackedPolicy::new(kind, sets, ways, seed);
            let mut chunks: Vec<PackedPolicy> = (0..sets / chunk)
                .map(|c| PackedPolicy::new_at_offset(kind, chunk, ways, seed, c * chunk))
                .collect();
            let mut x = 99usize;
            for _ in 0..2000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let set = (x >> 33) % sets;
                let way = (x >> 13) % ways;
                let local = set % chunk;
                let part = &mut chunks[set / chunk];
                match x % 5 {
                    0 => {
                        whole.on_hit(set, way);
                        part.on_hit(local, way);
                    }
                    1 => {
                        whole.on_fill(set, way);
                        part.on_fill(local, way);
                    }
                    2 => {
                        whole.on_fill_low_priority(set, way);
                        part.on_fill_low_priority(local, way);
                    }
                    3 => {
                        whole.on_invalidate(set, way);
                        part.on_invalidate(local, way);
                    }
                    _ => assert_eq!(whole.victim(set), part.victim(local), "{kind:?}"),
                }
                assert_eq!(whole.peek_victim(set), part.peek_victim(local), "{kind:?}");
            }
        }
    }

    #[test]
    fn plru_bit_word_matches_documented_walk() {
        let mut p = PackedPolicy::new(ReplacementKind::TreePlru, 1, 4, 0);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_hit(0, 1);
        p.on_hit(0, 2);
        p.on_hit(0, 3);
        assert_eq!(p.peek_victim(0), 0, "way 0 is the coldest leaf");
        p.on_fill_low_priority(0, 2);
        assert_eq!(p.peek_victim(0), 2, "NT insertion becomes the candidate");
    }
}
