//! Uniform-random replacement, the example policy for the paper's
//! arbitrary-replacement magnifier gadget (§6.3).

use super::ReplacementPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform-random victim selection, as on the Arm1176 the paper cites for
/// its §6.3 demonstration ("an L1 cache with 64 sets, 8 ways and a random
/// replacement policy").
///
/// The RNG is seeded per instance so simulations are reproducible; two
/// instances built with the same seed produce identical victim sequences.
///
/// ```
/// use racer_mem::{RandomReplacement, ReplacementPolicy};
/// let mut a = RandomReplacement::new(8, 42);
/// let mut b = RandomReplacement::new(8, 42);
/// let va: Vec<usize> = (0..16).map(|_| a.victim()).collect();
/// let vb: Vec<usize> = (0..16).map(|_| b.victim()).collect();
/// assert_eq!(va, vb);
/// ```
#[derive(Clone, Debug)]
pub struct RandomReplacement {
    ways: usize,
    rng: StdRng,
    /// Victim pre-drawn so `peek_victim` can preview without advancing state.
    next: usize,
}

impl RandomReplacement {
    /// Create a random-replacement instance for `ways` ways, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize, seed: u64) -> Self {
        assert!(ways >= 1, "random replacement needs at least one way");
        let mut rng = StdRng::seed_from_u64(seed);
        let next = rng.gen_range(0..ways);
        RandomReplacement { ways, rng, next }
    }
}

impl ReplacementPolicy for RandomReplacement {
    fn ways(&self) -> usize {
        self.ways
    }

    fn on_hit(&mut self, _way: usize) {}

    fn on_fill(&mut self, _way: usize) {}

    fn victim(&mut self) -> usize {
        let v = self.next;
        self.next = self.rng.gen_range(0..self.ways);
        v
    }

    fn peek_victim(&self) -> usize {
        self.next
    }

    fn on_invalidate(&mut self, _way: usize) {}

    fn reset(&mut self) {
        // Deliberately keeps the RNG stream: resetting content does not
        // rewind hardware randomness.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_cover_all_ways() {
        let mut p = RandomReplacement::new(8, 1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[p.victim()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "512 draws should hit every way of 8"
        );
    }

    #[test]
    fn victims_roughly_uniform() {
        let mut p = RandomReplacement::new(4, 7);
        let mut counts = [0usize; 4];
        let n = 4000;
        for _ in 0..n {
            counts[p.victim()] += 1;
        }
        for &c in &counts {
            // Expected 1000 each; allow generous slack.
            assert!(
                (700..=1300).contains(&c),
                "non-uniform victim counts: {counts:?}"
            );
        }
    }

    #[test]
    fn peek_matches_next_victim() {
        let mut p = RandomReplacement::new(8, 3);
        for _ in 0..64 {
            let peeked = p.peek_victim();
            assert_eq!(p.victim(), peeked);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomReplacement::new(8, 1);
        let mut b = RandomReplacement::new(8, 2);
        let va: Vec<usize> = (0..32).map(|_| a.victim()).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.victim()).collect();
        assert_ne!(va, vb);
    }
}
