//! Static re-reference interval prediction (SRRIP) replacement.

use super::ReplacementPolicy;

/// 2-bit SRRIP (Jaleel et al., ISCA 2010): each way holds a re-reference
/// prediction value (RRPV) in `0..=3`. Fills insert at RRPV 2 ("long"),
/// hits promote to 0, and the victim is the first way at RRPV 3 (aging all
/// ways until one is found).
///
/// Included as a modern non-PLRU policy to test the paper's §8 claim that
/// "removal of PLRU cache replacement will only cause the attacker to change
/// strategy": the arbitrary-replacement magnifier still functions under
/// SRRIP, while the PLRU-specific gadgets do not.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Srrip {
    rrpv: Vec<u8>,
}

/// Maximum RRPV for the 2-bit variant ("distant re-reference").
const RRPV_MAX: u8 = 3;
/// Insertion RRPV ("long re-reference interval").
const RRPV_INSERT: u8 = 2;

impl Srrip {
    /// Create an SRRIP instance for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways >= 1, "SRRIP needs at least one way");
        Srrip {
            rrpv: vec![RRPV_MAX; ways],
        }
    }

    /// Current RRPV values, for diagnostics.
    pub fn rrpv(&self) -> &[u8] {
        &self.rrpv
    }

    fn find_victim(&self) -> Option<usize> {
        self.rrpv.iter().position(|&v| v == RRPV_MAX)
    }
}

impl ReplacementPolicy for Srrip {
    fn ways(&self) -> usize {
        self.rrpv.len()
    }

    fn on_hit(&mut self, way: usize) {
        self.rrpv[way] = 0;
    }

    fn on_fill(&mut self, way: usize) {
        self.rrpv[way] = RRPV_INSERT;
    }

    fn on_fill_low_priority(&mut self, way: usize) {
        self.rrpv[way] = RRPV_MAX;
    }

    fn victim(&mut self) -> usize {
        loop {
            if let Some(w) = self.find_victim() {
                return w;
            }
            for v in &mut self.rrpv {
                *v += 1;
            }
        }
    }

    fn peek_victim(&self) -> usize {
        // Preview without aging: the way that would win after aging is the
        // first way with the maximum current RRPV.
        let max = *self
            .rrpv
            .iter()
            .max()
            .expect("SRRIP always has at least one way");
        self.rrpv
            .iter()
            .position(|&v| v == max)
            .expect("max element must exist")
    }

    fn on_invalidate(&mut self, way: usize) {
        self.rrpv[way] = RRPV_MAX;
    }

    fn reset(&mut self) {
        self.rrpv.iter_mut().for_each(|v| *v = RRPV_MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_evicts_way_zero_first() {
        let mut p = Srrip::new(4);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn hit_protects_line_until_aged_out() {
        let mut p = Srrip::new(2);
        p.on_fill(0);
        p.on_fill(1);
        p.on_hit(0); // RRPV: [0, 2]
                     // Victim search ages both to [1, 3] and picks way 1.
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn low_priority_fill_is_distant() {
        let mut p = Srrip::new(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_fill_low_priority(2);
        assert_eq!(p.peek_victim(), 2);
        assert_eq!(p.victim(), 2);
    }

    #[test]
    fn peek_matches_victim_without_mutation() {
        let mut p = Srrip::new(8);
        for w in 0..8 {
            p.on_fill(w);
        }
        p.on_hit(3);
        p.on_hit(5);
        let peeked = p.peek_victim();
        assert_eq!(p.victim(), peeked);
    }

    #[test]
    fn aging_terminates() {
        let mut p = Srrip::new(4);
        for w in 0..4 {
            p.on_fill(w);
            p.on_hit(w);
        }
        // All RRPV 0: victim() must age three times and still return.
        let v = p.victim();
        assert!(v < 4);
    }
}
