//! Binary-tree pseudo-LRU, the policy attacked by the paper's §6.1/§6.2
//! magnifier gadgets (Figures 3 and 4).

use super::ReplacementPolicy;

/// Tree-based pseudo-least-recently-used replacement for a power-of-two
/// number of ways.
///
/// The policy keeps `ways - 1` direction bits arranged as a complete binary
/// tree (heap-indexed from 1). Each internal node points towards the subtree
/// holding the *eviction candidate* (EVC). On an access to way `w`, every bit
/// on the root→`w` path is flipped to point **away** from `w`; the victim is
/// found by walking the pointers from the root.
///
/// This is exactly the state machine of the paper's Figure 3: "the arrows
/// within each sub-figure compose one path from root to the leaf, pointing to
/// the eviction candidate. Every time an access happens ... it will flip
/// arrows on its path."
///
/// ```
/// use racer_mem::{ReplacementPolicy, TreePlru};
/// let mut p = TreePlru::new(4);
/// for w in 0..4 { p.on_fill(w); }
/// p.on_hit(1); p.on_hit(2); p.on_hit(3);
/// // Way 0 is the least-recently-touched leaf, and here pseudo-LRU agrees
/// // with true LRU: way 0 is the eviction candidate.
/// assert_eq!(p.peek_victim(), 0);
/// ```
#[derive(Clone, Debug, Eq, PartialEq, Hash)]
pub struct TreePlru {
    ways: usize,
    /// Heap-indexed direction bits; index 0 unused. `false` = EVC path goes
    /// to the left child, `true` = right child.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Create a tree-PLRU instance for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or not a power of two (a binary tree needs a
    /// power-of-two leaf count).
    pub fn new(ways: usize) -> Self {
        assert!(
            ways >= 1 && ways.is_power_of_two(),
            "tree-PLRU needs a power-of-two way count"
        );
        TreePlru {
            ways,
            bits: vec![false; ways.max(2)],
        }
    }

    /// Flip every bit on the root→`way` path to point away from `way`.
    fn touch(&mut self, way: usize) {
        debug_assert!(way < self.ways);
        if self.ways == 1 {
            return;
        }
        let mut node = way + self.ways; // leaf index in heap order
        while node > 1 {
            let parent = node / 2;
            // If we came from the left child (even heap index), point right.
            self.bits[parent] = node.is_multiple_of(2);
            node = parent;
        }
    }

    /// Direction bits on the root→leaf paths, for tests and diagnostics.
    /// `bits()[1]` is the root; index 0 is unused.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Walk the direction bits from the root down to a leaf.
    fn walk(&self) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let mut node = 1;
        while node < self.ways {
            node = 2 * node + usize::from(self.bits[node]);
        }
        node - self.ways
    }
}

impl ReplacementPolicy for TreePlru {
    fn ways(&self) -> usize {
        self.ways
    }

    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill_low_priority(&mut self, way: usize) {
        // A non-temporal insertion leaves the tree pointing *at* the new
        // line, making it the next eviction candidate (paper §6.3.1
        // footnote 7: such lines are "easier to be evicted"). Point every
        // bit on the path towards `way`.
        if self.ways == 1 {
            return;
        }
        let mut node = way + self.ways;
        while node > 1 {
            let parent = node / 2;
            self.bits[parent] = node % 2 == 1;
            node = parent;
        }
    }

    fn victim(&mut self) -> usize {
        self.walk()
    }

    fn peek_victim(&self) -> usize {
        self.walk()
    }

    fn on_invalidate(&mut self, _way: usize) {
        // Tree bits keep their value; the set layer prefers empty ways, so
        // no state change is required here (matches common hardware).
    }

    fn reset(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-way set with labelled contents, driven by the policy under test.
    /// Mirrors how Figure 3 labels lines by content letter.
    struct SetModel {
        p: TreePlru,
        content: [char; 4],
    }

    impl SetModel {
        /// Build the exact initial state of Figure 3.1: contents
        /// `[B, C, D, E]` in ways `[0, 1, 2, 3]`, eviction candidate = B,
        /// and the right subtree pointing at E (so that inserting A makes E
        /// the next EVC, as the figure shows).
        ///
        /// Fill order `B, C, E, D` produces direction bits
        /// `root=left, left-node=left, right-node=right(E)` which is that
        /// state (verified in `figure3_initial_state`).
        fn figure3_initial() -> Self {
            let mut p = TreePlru::new(4);
            p.on_fill(0); // B
            p.on_fill(1); // C
            p.on_fill(3); // E
            p.on_fill(2); // D
            SetModel {
                p,
                content: ['B', 'C', 'D', 'E'],
            }
        }

        fn way_of(&self, c: char) -> Option<usize> {
            self.content.iter().position(|&x| x == c)
        }

        /// Access `c`; returns `true` on a miss (with fill over the EVC).
        /// Panics via assert if the fill would evict `protected`.
        fn access(&mut self, c: char, protected: Option<char>) -> bool {
            match self.way_of(c) {
                Some(w) => {
                    self.p.on_hit(w);
                    false
                }
                None => {
                    let v = self.p.victim();
                    if let Some(pr) = protected {
                        assert_ne!(self.content[v], pr, "the PLRU gadget must never evict {pr}");
                    }
                    self.content[v] = c;
                    self.p.on_fill(v);
                    true
                }
            }
        }

        fn evc(&self) -> char {
            self.content[self.p.peek_victim()]
        }
    }

    #[test]
    fn figure3_initial_state() {
        let m = SetModel::figure3_initial();
        assert_eq!(
            m.evc(),
            'B',
            "Figure 3.1: B is the initial eviction candidate"
        );
    }

    /// Drive the set through Figure 3's exact access walk, checking the
    /// eviction candidate at each captioned step.
    #[test]
    fn figure3_presence_walk() {
        let mut m = SetModel::figure3_initial();

        // (3.1) → (3.2): A misses, evicts B, EVC switches to E.
        assert!(m.access('A', None));
        assert_eq!(m.content, ['A', 'C', 'D', 'E']);
        assert_eq!(m.evc(), 'E', "Figure 3.2: EVC switches to E after A fills");

        // (3.2) → (3.3): B misses, evicts E.
        assert!(m.access('B', Some('A')));
        assert_eq!(m.content, ['A', 'C', 'D', 'B']);

        // (3.3) → (3.4): C hits; EVC changes without an eviction.
        assert!(!m.access('C', Some('A')));

        // (3.4) → (3.5): E misses and evicts D (not A!); A becomes the EVC.
        assert!(m.access('E', Some('A')));
        assert_eq!(m.content, ['A', 'C', 'E', 'B']);
        assert_eq!(m.evc(), 'A', "Figure 3.5: A becomes the new EVC");

        // (3.5) → (3.6): C is accessed to protect A; B becomes the EVC.
        assert!(!m.access('C', Some('A')));
        assert_eq!(m.evc(), 'B', "Figure 3.6: B becomes the new EVC");

        // (3.6) → (3.7): D misses and evicts B rather than A.
        assert!(m.access('D', Some('A')));
        assert_eq!(m.content, ['A', 'C', 'E', 'D']);
        assert_eq!(m.evc(), 'A', "Figure 3.7: A is the EVC again");

        // (3.7) → (3.8): C flips the top of the tree; the cycle can repeat
        // indefinitely without a new access to A.
        assert!(!m.access('C', Some('A')));
        assert_ne!(m.evc(), 'A');
    }

    /// The repeating 6-access pattern from Figure 3 (B,C,E,C,D,C with A
    /// resident) misses exactly every other access, forever, and never
    /// evicts A.
    #[test]
    fn figure3_steady_state_cycle() {
        let mut m = SetModel::figure3_initial();
        assert!(m.access('A', None)); // bring A in (evicts B)

        let mut misses = 0usize;
        for _round in 0..50 {
            for c in ['B', 'C', 'E', 'C', 'D', 'C'] {
                if m.access(c, Some('A')) {
                    misses += 1;
                }
            }
        }
        assert_eq!(
            misses, 150,
            "Figure 3: cache misses happen every other access (3 per 6-access round)"
        );
        assert!(
            m.way_of('A').is_some(),
            "A must survive the whole magnifier run"
        );
    }

    /// Figure 4: if B is accessed *before* A is inserted, A lands in a
    /// different way, is evicted after a few accesses, and the misses stop.
    #[test]
    fn figure4_absence_walk_misses_stop() {
        let mut m = SetModel::figure3_initial();
        assert!(!m.access('B', None)); // B first (hit: already resident)
        assert!(m.access('A', None)); // then A (fills over EVC = E)
        assert_eq!(m.content, ['B', 'C', 'D', 'A']);

        let mut evicted_a_at = None;
        let mut quiet_round = None;
        for round in 0..20 {
            let mut round_misses = 0;
            for c in ['C', 'E', 'C', 'D', 'C', 'B'] {
                let a_before = m.way_of('A').is_some();
                if m.access(c, None) {
                    round_misses += 1;
                }
                if a_before && m.way_of('A').is_none() && evicted_a_at.is_none() {
                    evicted_a_at = Some(round);
                }
            }
            if round_misses == 0 {
                quiet_round = Some(round);
                break;
            }
        }
        assert_eq!(
            evicted_a_at,
            Some(0),
            "Figure 4: A is evicted during the first round"
        );
        assert_eq!(quiet_round, Some(1), "no more misses once A is gone");
    }

    /// §6.2's headline property: under the reorder-input pattern
    /// (C,E,C,D,C,B), whether A survives — and therefore whether the pattern
    /// keeps missing — is decided purely by whether A or B arrived first.
    #[test]
    fn reorder_input_direction_decides_a_survival() {
        let run = |a_first: bool| -> (bool, usize) {
            let mut m = SetModel::figure3_initial();
            if a_first {
                m.access('A', None);
                m.access('B', None);
            } else {
                m.access('B', None);
                m.access('A', None);
            }
            let mut misses = 0usize;
            for _ in 0..30 {
                for c in ['C', 'E', 'C', 'D', 'C', 'B'] {
                    if m.access(c, None) {
                        misses += 1;
                    }
                }
            }
            (m.way_of('A').is_some(), misses)
        };

        let (a_resident, misses) = run(true);
        assert!(a_resident, "A inserted before B must survive the pattern");
        assert_eq!(
            misses, 90,
            "A's residency causes 3 misses per round, forever"
        );

        let (a_resident, misses) = run(false);
        assert!(!a_resident, "A inserted after B must be evicted");
        assert!(
            misses <= 4,
            "once A is gone the working set fits: got {misses} misses"
        );
    }

    #[test]
    fn low_priority_fill_becomes_next_victim() {
        let mut p = TreePlru::new(8);
        for w in 0..8 {
            p.on_fill(w);
        }
        p.on_fill_low_priority(5);
        assert_eq!(p.peek_victim(), 5);
    }

    #[test]
    fn victim_never_most_recently_touched() {
        for ways in [2usize, 4, 8, 16] {
            let mut p = TreePlru::new(ways);
            for w in 0..ways {
                p.on_fill(w);
            }
            // Pseudo-random-ish touch sequence.
            let mut x = 7usize;
            for _ in 0..200 {
                x = (x * 31 + 17) % ways;
                p.on_hit(x);
                assert_ne!(p.peek_victim(), x, "EVC may never be the just-touched way");
            }
        }
    }

    #[test]
    fn single_way_always_victim_zero() {
        let mut p = TreePlru::new(1);
        p.on_fill(0);
        p.on_hit(0);
        assert_eq!(p.victim(), 0);
        assert_eq!(p.peek_victim(), 0);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let _ = TreePlru::new(3);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = TreePlru::new(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        let mut fresh = TreePlru::new(4);
        fresh.reset();
        p.reset();
        assert_eq!(p, fresh);
    }
}
