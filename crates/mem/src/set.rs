//! A single set of a set-associative cache, driven by a boxed
//! [`ReplacementPolicy`].
//!
//! This is the *reference* encoding: one heap-allocated policy object per
//! set, tags in `Vec<Option<LineAddr>>`. The flattened
//! [`Cache`](crate::Cache) re-implements the same state machine over
//! contiguous arrays for speed; the differential proptest in
//! `crates/mem/tests/differential.rs` keeps the two bit-identical.
//! [`CacheSet`] remains the right tool for experiments that reason about a
//! single set in isolation (the PLRU/arbitrary-replacement magnifiers).

use crate::addr::LineAddr;
use crate::replacement::ReplacementPolicy;

/// Result of inserting a line into a [`CacheSet`].
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub struct FillOutcome {
    /// Way the line was placed in.
    pub way: usize,
    /// Valid line displaced to make room, if any.
    pub evicted: Option<LineAddr>,
}

/// One cache set: per-way tags plus a replacement-policy instance.
///
/// The set prefers empty ways for fills; only a full set consults the policy
/// for a victim. All policy bookkeeping (`on_hit`/`on_fill`/`on_invalidate`)
/// happens here so callers cannot desynchronize tags and policy state.
#[derive(Debug)]
pub struct CacheSet {
    lines: Vec<Option<LineAddr>>,
    policy: Box<dyn ReplacementPolicy>,
}

impl CacheSet {
    /// Create a set managed by `policy`, with `policy.ways()` ways, all empty.
    pub fn new(policy: Box<dyn ReplacementPolicy>) -> Self {
        let ways = policy.ways();
        CacheSet {
            lines: vec![None; ways],
            policy,
        }
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.lines.len()
    }

    /// Way currently holding `line`, if resident.
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        self.lines.iter().position(|&l| l == Some(line))
    }

    /// Whether `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.way_of(line).is_some()
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// The resident lines, in way order.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter().filter_map(|&l| l)
    }

    /// Record a demand hit on `line`.
    ///
    /// Returns `true` if the line was resident (and the policy was updated).
    pub fn touch(&mut self, line: LineAddr) -> bool {
        match self.way_of(line) {
            Some(w) => {
                self.policy.on_hit(w);
                true
            }
            None => false,
        }
    }

    /// Insert `line`, evicting a victim if the set is full.
    ///
    /// If `line` is already resident this degenerates to a touch (hardware
    /// never double-fills a line).
    pub fn fill(&mut self, line: LineAddr) -> FillOutcome {
        self.fill_inner(line, false)
    }

    /// Insert `line` with a low-priority (non-temporal) hint: the policy
    /// places it at, or near, the eviction-candidate position.
    pub fn fill_low_priority(&mut self, line: LineAddr) -> FillOutcome {
        self.fill_inner(line, true)
    }

    fn fill_inner(&mut self, line: LineAddr, low_priority: bool) -> FillOutcome {
        if let Some(way) = self.way_of(line) {
            self.policy.on_hit(way);
            return FillOutcome { way, evicted: None };
        }
        let (way, evicted) = match self.lines.iter().position(|l| l.is_none()) {
            Some(empty) => (empty, None),
            None => {
                let victim = self.policy.victim();
                (victim, self.lines[victim])
            }
        };
        self.lines[way] = Some(line);
        if low_priority {
            self.policy.on_fill_low_priority(way);
        } else {
            self.policy.on_fill(way);
        }
        FillOutcome { way, evicted }
    }

    /// Remove `line` if resident; returns `true` if it was.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        match self.way_of(line) {
            Some(w) => {
                self.lines[w] = None;
                self.policy.on_invalidate(w);
                true
            }
            None => false,
        }
    }

    /// The line the policy would evict next if a fill arrived now (only
    /// meaningful when the set is full).
    pub fn eviction_candidate(&self) -> Option<LineAddr> {
        if self.occupancy() < self.ways() {
            return None;
        }
        self.lines[self.policy.peek_victim()]
    }

    /// Empty the set and reset the policy.
    pub fn clear(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = None);
        self.policy.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementKind;

    fn set(kind: ReplacementKind, ways: usize) -> CacheSet {
        CacheSet::new(kind.build(ways, 11))
    }

    #[test]
    fn fills_prefer_empty_ways() {
        let mut s = set(ReplacementKind::TreePlru, 4);
        for i in 0..4 {
            let out = s.fill(LineAddr(i));
            assert_eq!(out.evicted, None, "no eviction while empty ways remain");
        }
        assert_eq!(s.occupancy(), 4);
        let out = s.fill(LineAddr(100));
        assert!(out.evicted.is_some(), "full set must evict");
        assert_eq!(s.occupancy(), 4);
    }

    #[test]
    fn refill_of_resident_line_is_touch() {
        let mut s = set(ReplacementKind::Lru, 2);
        s.fill(LineAddr(1));
        s.fill(LineAddr(2));
        let out = s.fill(LineAddr(1)); // already resident
        assert_eq!(out.evicted, None);
        assert_eq!(s.occupancy(), 2);
        // 1 is now MRU, so filling a new line evicts 2.
        let out = s.fill(LineAddr(3));
        assert_eq!(out.evicted, Some(LineAddr(2)));
    }

    #[test]
    fn touch_reports_residency() {
        let mut s = set(ReplacementKind::TreePlru, 2);
        assert!(!s.touch(LineAddr(9)));
        s.fill(LineAddr(9));
        assert!(s.touch(LineAddr(9)));
    }

    #[test]
    fn invalidate_frees_way_for_next_fill() {
        let mut s = set(ReplacementKind::Lru, 2);
        s.fill(LineAddr(1));
        s.fill(LineAddr(2));
        assert!(s.invalidate(LineAddr(1)));
        assert!(!s.invalidate(LineAddr(1)));
        let out = s.fill(LineAddr(3));
        assert_eq!(out.evicted, None, "fill must reuse the invalidated way");
        assert!(s.contains(LineAddr(2)));
    }

    #[test]
    fn eviction_candidate_only_when_full() {
        let mut s = set(ReplacementKind::Lru, 2);
        assert_eq!(s.eviction_candidate(), None);
        s.fill(LineAddr(1));
        assert_eq!(s.eviction_candidate(), None);
        s.fill(LineAddr(2));
        assert_eq!(s.eviction_candidate(), Some(LineAddr(1)));
    }

    #[test]
    fn clear_empties_set() {
        let mut s = set(ReplacementKind::Srrip, 4);
        for i in 0..4 {
            s.fill(LineAddr(i));
        }
        s.clear();
        assert_eq!(s.occupancy(), 0);
        assert!(!s.contains(LineAddr(0)));
    }

    #[test]
    fn resident_lines_iterates_in_way_order() {
        let mut s = set(ReplacementKind::Fifo, 4);
        s.fill(LineAddr(7));
        s.fill(LineAddr(3));
        let lines: Vec<_> = s.resident_lines().collect();
        assert_eq!(lines, vec![LineAddr(7), LineAddr(3)]);
    }

    #[test]
    fn random_policy_set_never_loses_lines_silently() {
        let mut s = set(ReplacementKind::Random, 8);
        let mut resident = std::collections::HashSet::new();
        for i in 0..100u64 {
            let out = s.fill(LineAddr(i));
            resident.insert(LineAddr(i));
            if let Some(e) = out.evicted {
                resident.remove(&e);
            }
            assert_eq!(s.occupancy(), resident.len().min(8));
            for l in s.resident_lines() {
                assert!(resident.contains(&l), "set holds a line the model does not");
            }
        }
    }
}
