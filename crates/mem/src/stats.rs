//! Hit/miss/eviction counters for caches and the hierarchy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Event counters for a single cache level.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that found their line resident.
    pub hits: u64,
    /// Demand accesses that did not find their line resident.
    pub misses: u64,
    /// Lines inserted into the cache.
    pub fills: u64,
    /// Valid lines displaced to make room for a fill.
    pub evictions: u64,
    /// Lines removed by explicit flush or inclusive back-invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total demand accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses have occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }

    /// Counter-wise difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `earlier` has larger counters than `self`.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            fills: self.fills - earlier.fills,
            evictions: self.evictions - earlier.evictions,
            invalidations: self.invalidations - earlier.invalidations,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} ({:.1}% miss) fills={} evictions={} invalidations={}",
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0,
            self.fills,
            self.evictions,
            self.invalidations
        )
    }
}

/// Aggregated counters for a whole [`Hierarchy`](crate::Hierarchy).
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Shared last-level cache counters.
    pub l3: CacheStats,
    /// Accesses that had to go all the way to DRAM.
    pub memory_accesses: u64,
    /// Explicit flush operations serviced.
    pub flushes: u64,
    /// Prefetch operations serviced.
    pub prefetches: u64,
}

impl fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "L1D: {}", self.l1d)?;
        writeln!(f, "L2 : {}", self.l2)?;
        writeln!(f, "L3 : {}", self.l3)?;
        write!(
            f,
            "DRAM accesses: {}  flushes: {}  prefetches: {}",
            self.memory_accesses, self.flushes, self.prefetches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero_accesses() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_counts() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts_counterwise() {
        let early = CacheStats {
            hits: 1,
            misses: 2,
            fills: 2,
            evictions: 1,
            invalidations: 0,
        };
        let late = CacheStats {
            hits: 5,
            misses: 3,
            fills: 3,
            evictions: 2,
            invalidations: 4,
        };
        let d = late.since(&early);
        assert_eq!(
            d,
            CacheStats {
                hits: 4,
                misses: 1,
                fills: 1,
                evictions: 1,
                invalidations: 4
            }
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CacheStats::default().to_string().is_empty());
        assert!(!HierarchyStats::default().to_string().is_empty());
    }
}
