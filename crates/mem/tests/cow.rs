//! Copy-on-write fork semantics: cloning a [`Hierarchy`] shares chunked
//! cache storage behind `Arc`s and materialises private chunks on first
//! write — these tests pin that the sharing is *unobservable*. A forked
//! pair driven by arbitrary interleaved access streams must stay
//! bit-identical (outcomes, stats, tag contents, replacement state, RNG
//! position) to eagerly deep-cloned hierarchies driven by the same
//! streams, including the case where one fork never writes a shared level
//! at all.

use proptest::prelude::*;
use racer_mem::{AccessKind, Addr, Hierarchy, HierarchyConfig, ReplacementKind};

fn kinds() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::TreePlru),
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Random),
        Just(ReplacementKind::Fifo),
        Just(ReplacementKind::Srrip),
    ]
}

/// Small levels so a few hundred ops reach every eviction and
/// back-invalidation path, with enough sets that the L2/L3 span multiple
/// would-be chunks of larger geometries.
fn tiny_hierarchy(kind: ReplacementKind) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::coffee_lake();
    cfg.l1d.sets = 4;
    cfg.l1d.ways = 2;
    cfg.l1d.replacement = kind;
    cfg.l2.sets = 8;
    cfg.l2.ways = 2;
    cfg.l2.replacement = kind;
    cfg.l3.sets = 8;
    cfg.l3.ways = 4;
    cfg.l3.replacement = kind;
    cfg
}

/// Apply one encoded op to a hierarchy. Ops 0–3 mutate; 4 flushes; 5–6 are
/// read-only (they must never split a shared chunk).
fn apply(h: &mut Hierarchy, addr: u64, op: u8) -> String {
    let a = Addr(addr * 64);
    match op % 7 {
        0 => format!("{:?}", h.access(a, AccessKind::Load)),
        1 => format!("{:?}", h.access(a, AccessKind::Store)),
        2 => format!("{:?}", h.access(a, AccessKind::Prefetch)),
        3 => format!("{:?}", h.access(a, AccessKind::PrefetchNta)),
        4 => {
            h.flush(a);
            "flush".into()
        }
        5 => format!("{:?}", h.probe(a)),
        _ => format!("{:?}", h.peek_latency(a)),
    }
}

/// Full-state fingerprint: the derived `Debug` output covers tags, valid
/// masks, packed replacement state, RNG position and every counter.
/// (`PackedPolicy`/`StdRng` deliberately have no `PartialEq`, so the
/// formatted form is the bit-exactness proxy, as in the differential
/// suite.)
fn fingerprint(h: &Hierarchy) -> String {
    format!("{h:?}")
}

proptest! {
    /// A COW-forked pair under an arbitrary interleaved access stream is
    /// bit-identical — per-op outcomes and final full state — to eagerly
    /// deep-cloned (`unshare`d) hierarchies driven by the same per-lane
    /// streams, and neither fork's writes leak into the other or into the
    /// warmed base.
    #[test]
    fn forked_pair_matches_eager_deep_clones(
        kind in kinds(),
        warmup in proptest::collection::vec((0u64..64, 0u8..4), 0..120),
        ops in proptest::collection::vec((any::<bool>(), 0u64..64, 0u8..7), 1..400),
    ) {
        let mut base = Hierarchy::new(tiny_hierarchy(kind));
        for &(addr, op) in &warmup {
            apply(&mut base, addr, op);
        }

        // Copy-on-write forks: chunk-pointer copies of the warmed base.
        let mut cow = [base.clone(), base.clone()];
        prop_assert_eq!(cow[0].private_bytes_vs(&base), 0);
        prop_assert_eq!(cow[1].private_bytes_vs(&base), 0);

        // Eager deep clones of the same state: all storage private up front.
        let mut eager = [base.clone(), base.clone()];
        eager[0].unshare();
        eager[1].unshare();
        prop_assert_eq!(eager[0].l3().shared_chunks_with(base.l3()), 0);

        let base_before = fingerprint(&base);
        for &(second, addr, op) in &ops {
            let lane = second as usize;
            let got = apply(&mut cow[lane], addr, op);
            let want = apply(&mut eager[lane], addr, op);
            prop_assert_eq!(got, want, "outcome diverged (kind {:?})", kind);
        }

        // Final state bit-identical per lane; forks and base fully isolated.
        prop_assert_eq!(fingerprint(&cow[0]), fingerprint(&eager[0]));
        prop_assert_eq!(fingerprint(&cow[1]), fingerprint(&eager[1]));
        prop_assert_eq!(fingerprint(&base), base_before, "fork wrote into its base");

        // A lane's private footprint never exceeds a full deep copy.
        let full: usize = base.private_bytes_vs(&Hierarchy::new(tiny_hierarchy(kind)));
        prop_assert!(cow[0].private_bytes_vs(&base) <= full);
    }

    /// Read-only traffic (probes, latency peeks) on one fork while the
    /// other mutates: the read-only fork stays fully chunk-shared with the
    /// base — the never-written-shared-level case — and still reports
    /// exactly the base's contents.
    #[test]
    fn never_written_fork_stays_shared_and_exact(
        kind in kinds(),
        warmup in proptest::collection::vec((0u64..64, 0u8..4), 1..120),
        ops in proptest::collection::vec((0u64..64, 0u8..7), 1..200),
    ) {
        let mut base = Hierarchy::new(tiny_hierarchy(kind));
        for &(addr, op) in &warmup {
            apply(&mut base, addr, op);
        }
        let mut writer = base.clone();
        let mut reader = base.clone();

        for &(addr, op) in &ops {
            apply(&mut writer, addr, op);
            // Reader only ever probes/peeks (ops 5 and 6).
            let got = apply(&mut reader, addr, 5 + op % 2);
            let want = apply(&mut base.clone(), addr, 5 + op % 2);
            prop_assert_eq!(got, want);
        }

        // The reader never materialised anything…
        prop_assert_eq!(reader.private_bytes_vs(&base), 0);
        let (l1, l2, l3) = (base.l1d(), base.l2(), base.l3());
        prop_assert_eq!(reader.l1d().shared_chunks_with(l1), l1.num_chunks());
        prop_assert_eq!(reader.l2().shared_chunks_with(l2), l2.num_chunks());
        prop_assert_eq!(reader.l3().shared_chunks_with(l3), l3.num_chunks());
        // …and is still bit-identical to the base despite the writer's
        // traffic against the same shared chunks.
        prop_assert_eq!(fingerprint(&reader), fingerprint(&base));
    }
}

/// Full-geometry smoke test: at Coffee-Lake scale a fork's private bytes
/// track the chunks it touched, not the level sizes (the property the
/// batch engine's slice schedule depends on).
#[test]
fn coffee_lake_fork_materialises_proportionally() {
    let mut base = Hierarchy::new(HierarchyConfig::coffee_lake());
    // Warm a realistic working set: 512 lines.
    for i in 0..512u64 {
        base.load(Addr(i * 64));
    }
    let mut fork = base.clone();
    assert_eq!(fork.private_bytes_vs(&base), 0);

    // Touch a single line: at most one chunk per level splits.
    fork.load(Addr(0));
    let after_one = fork.private_bytes_vs(&base);
    assert!(after_one > 0, "a write must materialise something");
    // One L1 chunk (64 sets × 8 ways) + one L2 chunk + one L3 chunk is
    // far below the ~1.3 MB a deep clone of all levels costs.
    assert!(
        after_one < 64 * 1024,
        "single-line touch materialised {after_one} bytes — not chunk-granular"
    );

    // The base is untouched and other forks still share everything.
    let other = base.clone();
    assert_eq!(other.private_bytes_vs(&base), 0);
    assert_eq!(
        other.l3().shared_chunks_with(base.l3()),
        base.l3().num_chunks()
    );
}
