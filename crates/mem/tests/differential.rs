//! Differential tests: the flattened struct-of-arrays cache model
//! ([`Cache`]/[`Hierarchy`]) against a reference built from the retained
//! boxed-policy [`CacheSet`]s, under random access/fill/invalidate streams.
//!
//! The flattened model re-encodes the replacement state machines (packed
//! tree-PLRU bit-words, byte arrays, per-set RNGs) — these tests pin that
//! re-encoding bit-exact: identical hit levels, latencies, fill ways and
//! eviction outcomes on every step, for every policy, including the
//! seed-derived random-replacement streams.

use proptest::prelude::*;
use racer_mem::{
    AccessKind, Addr, Cache, CacheConfig, CacheSet, FillOutcome, Hierarchy, HierarchyConfig,
    HitLevel, LineAddr, ReplacementKind,
};

/// Reference single-level cache: per-set boxed-policy [`CacheSet`]s, the
/// exact pre-flattening implementation (empty-way preference, policy
/// bookkeeping and per-set seed derivation included).
struct BoxedCache {
    sets: Vec<CacheSet>,
    num_sets: usize,
}

impl BoxedCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = (0..cfg.sets)
            .map(|i| {
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64);
                CacheSet::new(cfg.replacement.build(cfg.ways, seed))
            })
            .collect();
        BoxedCache {
            sets,
            num_sets: cfg.sets,
        }
    }

    fn set_of(&mut self, line: LineAddr) -> &mut CacheSet {
        let idx = line.set_index(self.num_sets);
        &mut self.sets[idx]
    }

    fn probe(&mut self, line: LineAddr) -> bool {
        self.set_of(line).contains(line)
    }

    fn access(&mut self, line: LineAddr) -> bool {
        self.set_of(line).touch(line)
    }

    fn fill(&mut self, line: LineAddr, low_priority: bool) -> FillOutcome {
        if low_priority {
            self.set_of(line).fill_low_priority(line)
        } else {
            self.set_of(line).fill(line)
        }
    }

    fn invalidate(&mut self, line: LineAddr) -> bool {
        self.set_of(line).invalidate(line)
    }

    fn eviction_candidate(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.set_of(line).eviction_candidate()
    }
}

/// Reference three-level hierarchy over [`BoxedCache`]s, mirroring
/// [`Hierarchy::access`]'s documented fill/inclusion algorithm (without the
/// L1-hit fast path — that is the thing under test).
struct BoxedHierarchy {
    cfg: HierarchyConfig,
    l1d: BoxedCache,
    l2: BoxedCache,
    l3: BoxedCache,
}

/// What one access did, in reference terms.
#[derive(Debug, PartialEq, Eq)]
struct RefOutcome {
    level: HitLevel,
    latency: u64,
    l1_evicted: Option<LineAddr>,
    l3_evicted: Option<LineAddr>,
}

impl BoxedHierarchy {
    fn new(cfg: HierarchyConfig) -> Self {
        assert_eq!(cfg.memory_jitter, 0, "reference model is jitter-free");
        BoxedHierarchy {
            l1d: BoxedCache::new(cfg.l1d),
            l2: BoxedCache::new(cfg.l2),
            l3: BoxedCache::new(cfg.l3),
            cfg,
        }
    }

    fn access(&mut self, addr: Addr, kind: AccessKind) -> RefOutcome {
        let line = addr.line();
        let low_priority = matches!(kind, AccessKind::PrefetchNta);
        if self.l1d.access(line) {
            return RefOutcome {
                level: HitLevel::L1,
                latency: self.cfg.l1d.hit_latency,
                l1_evicted: None,
                l3_evicted: None,
            };
        }
        if self.l2.access(line) {
            let l1_evicted = self.l1d.fill(line, low_priority).evicted;
            return RefOutcome {
                level: HitLevel::L2,
                latency: self.cfg.l2.hit_latency,
                l1_evicted,
                l3_evicted: None,
            };
        }
        if self.l3.access(line) {
            self.l2.fill(line, false);
            let l1_evicted = self.l1d.fill(line, low_priority).evicted;
            return RefOutcome {
                level: HitLevel::L3,
                latency: self.cfg.l3.hit_latency,
                l1_evicted,
                l3_evicted: None,
            };
        }
        let l3_evicted = self.l3.fill(line, false).evicted;
        if let Some(victim) = l3_evicted {
            if self.cfg.inclusive_l3 {
                self.l2.invalidate(victim);
                self.l1d.invalidate(victim);
            }
        }
        self.l2.fill(line, false);
        let l1_evicted = self.l1d.fill(line, low_priority).evicted;
        RefOutcome {
            level: HitLevel::Memory,
            latency: self.cfg.l3.hit_latency + self.cfg.memory_latency,
            l1_evicted,
            l3_evicted,
        }
    }

    fn flush(&mut self, addr: Addr) {
        let line = addr.line();
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
        self.l3.invalidate(line);
    }

    fn probe(&mut self, addr: Addr) -> HitLevel {
        let line = addr.line();
        if self.l1d.probe(line) {
            HitLevel::L1
        } else if self.l2.probe(line) {
            HitLevel::L2
        } else if self.l3.probe(line) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        }
    }
}

fn kinds() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::TreePlru),
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Random),
        Just(ReplacementKind::Fifo),
        Just(ReplacementKind::Srrip),
    ]
}

/// A small hierarchy so random streams exercise every miss and eviction
/// path (including inclusive-L3 back-invalidation) within a few hundred
/// accesses.
fn tiny_hierarchy(kind: ReplacementKind) -> HierarchyConfig {
    HierarchyConfig {
        l1d: CacheConfig {
            sets: 4,
            ways: 2,
            hit_latency: 4,
            replacement: kind,
            seed: 0x11d,
        },
        l2: CacheConfig {
            sets: 8,
            ways: 2,
            hit_latency: 12,
            replacement: kind,
            seed: 0x12,
        },
        l3: CacheConfig {
            sets: 8,
            ways: 4,
            hit_latency: 40,
            replacement: kind,
            seed: 0x13,
        },
        memory_latency: 200,
        memory_jitter: 0,
        inclusive_l3: true,
        seed: 1,
    }
}

proptest! {
    /// Single level: the flattened `Cache` and the boxed-policy reference
    /// agree on every access result, fill way, eviction victim,
    /// invalidation and eviction candidate — for every policy, including
    /// random replacement's per-set seed-derived streams.
    #[test]
    fn flattened_cache_matches_boxed_reference(
        kind in kinds(),
        ways in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        ops in proptest::collection::vec((0u64..64, 0u8..8), 1..400),
    ) {
        let cfg = CacheConfig {
            sets: 4,
            ways,
            hit_latency: 4,
            replacement: kind,
            seed: 0xFEED,
        };
        let mut flat = Cache::new(cfg);
        let mut boxed = BoxedCache::new(cfg);
        for (raw, op) in ops {
            let line = LineAddr(raw);
            match op {
                0..=2 => {
                    prop_assert_eq!(flat.access(line), boxed.access(line));
                }
                3..=4 => {
                    let f = flat.fill(line);
                    let b = boxed.fill(line, false);
                    prop_assert_eq!(f, b, "fill outcome diverged for {kind:?}");
                }
                5 => {
                    let f = flat.fill_low_priority(line);
                    let b = boxed.fill(line, true);
                    prop_assert_eq!(f, b, "low-priority fill diverged for {kind:?}");
                }
                6 => {
                    prop_assert_eq!(flat.invalidate(line), boxed.invalidate(line));
                }
                _ => {
                    prop_assert_eq!(flat.probe(line), boxed.probe(line));
                }
            }
            let set = flat.set_index(line);
            prop_assert_eq!(
                flat.set(set).eviction_candidate(),
                boxed.eviction_candidate(line),
                "eviction candidate diverged for {kind:?}"
            );
        }
    }

    /// Full hierarchy: the flattened model (with its L1-hit fast path and
    /// reused-lookup hit way) and the boxed reference agree on hit level,
    /// latency, and both eviction outcomes for every access of a random
    /// load/store/prefetch/flush stream.
    #[test]
    fn flattened_hierarchy_matches_boxed_reference(
        kind in kinds(),
        ops in proptest::collection::vec((0u64..96, 0u8..10), 1..500),
    ) {
        let cfg = tiny_hierarchy(kind);
        let mut flat = Hierarchy::new(cfg);
        let mut boxed = BoxedHierarchy::new(cfg);
        for (slot, op) in ops {
            let addr = Addr(slot * 64 + 8);
            match op {
                0 => {
                    flat.flush(addr);
                    boxed.flush(addr);
                }
                1 => {
                    prop_assert_eq!(flat.probe(addr), boxed.probe(addr));
                }
                _ => {
                    let kind_sel = match op {
                        2 => AccessKind::Store,
                        3 => AccessKind::Prefetch,
                        4 => AccessKind::PrefetchNta,
                        _ => AccessKind::Load,
                    };
                    let f = flat.access(addr, kind_sel);
                    let b = boxed.access(addr, kind_sel);
                    prop_assert_eq!(f.level, b.level, "hit level diverged for {kind:?}");
                    prop_assert_eq!(f.latency, b.latency, "latency diverged for {kind:?}");
                    prop_assert_eq!(
                        f.l1_evicted, b.l1_evicted,
                        "L1 eviction diverged for {kind:?}"
                    );
                    prop_assert_eq!(
                        f.l3_evicted, b.l3_evicted,
                        "L3 eviction diverged for {kind:?}"
                    );
                }
            }
            prop_assert_eq!(flat.probe(addr), boxed.probe(addr));
        }
    }

    /// The single-lookup hit path (`lookup` + `record_hit` /
    /// `Hierarchy::lookup_l1` + `access_l1_hit`) is observationally
    /// identical to a plain `access` on the hit case.
    #[test]
    fn reused_lookup_way_equals_plain_access(
        ops in proptest::collection::vec(0u64..48, 1..200),
    ) {
        let cfg = tiny_hierarchy(ReplacementKind::TreePlru);
        let mut via_lookup = Hierarchy::new(cfg);
        let mut via_access = Hierarchy::new(cfg);
        for slot in ops {
            let addr = Addr(slot * 64);
            let expected = via_access.access(addr, AccessKind::Load);
            let got = match via_lookup.lookup_l1(addr) {
                Some(way) => via_lookup.access_l1_hit(addr, way),
                None => via_lookup.access(addr, AccessKind::Load),
            };
            prop_assert_eq!(got, expected);
            prop_assert_eq!(
                via_lookup.l1d().stats(),
                via_access.l1d().stats(),
                "hit/miss counters diverged"
            );
        }
    }
}
