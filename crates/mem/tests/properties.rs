//! Property-based tests for the cache substrate: invariants that must hold
//! for every replacement policy under arbitrary access sequences.

use proptest::prelude::*;
use racer_mem::{
    Addr, Cache, CacheConfig, CacheSet, Hierarchy, HierarchyConfig, HitLevel, LineAddr,
    ReplacementKind,
};
use std::collections::HashSet;

fn kinds() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::TreePlru),
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Random),
        Just(ReplacementKind::Fifo),
        Just(ReplacementKind::Srrip),
    ]
}

proptest! {
    /// A set never exceeds its capacity, never silently drops a line, and
    /// fills always land where the policy said they would.
    #[test]
    fn set_occupancy_and_membership_invariants(
        kind in kinds(),
        ways in prop_oneof![Just(2usize), Just(4), Just(8)],
        ops in proptest::collection::vec((0u64..24, any::<bool>()), 1..200),
    ) {
        let mut set = CacheSet::new(kind.build(ways, 42));
        let mut model: HashSet<LineAddr> = HashSet::new();
        for (line, is_fill) in ops {
            let line = LineAddr(line);
            if is_fill {
                let out = set.fill(line);
                model.insert(line);
                if let Some(e) = out.evicted {
                    prop_assert_ne!(e, line, "a line cannot evict itself");
                    model.remove(&e);
                }
            } else {
                let hit = set.touch(line);
                prop_assert_eq!(hit, model.contains(&line), "touch result matches model");
            }
            prop_assert!(set.occupancy() <= ways);
            prop_assert_eq!(set.occupancy(), model.len().min(ways));
            for l in set.resident_lines() {
                prop_assert!(model.contains(&l), "resident line unknown to the model");
            }
        }
    }

    /// The victim a policy reports is always a valid way, and `peek_victim`
    /// never disagrees with the `victim` actually used by the next fill in
    /// a full set (determinism contract; random policies pre-draw).
    #[test]
    fn peek_matches_actual_victim(
        kind in kinds(),
        lines in proptest::collection::vec(0u64..64, 9..60),
    ) {
        let mut set = CacheSet::new(kind.build(8, 7));
        for l in 0..8u64 {
            set.fill(LineAddr(1000 + l));
        }
        for l in lines {
            let line = LineAddr(l);
            if set.way_of(line).is_some() {
                set.touch(line);
                continue;
            }
            let predicted = set.eviction_candidate();
            let out = set.fill(line);
            prop_assert_eq!(out.evicted, predicted, "fill must evict the peeked candidate");
        }
    }

    /// Hierarchy invariants under random load/flush sequences: probe levels
    /// are consistent with access outcomes, and an inclusive L3 never holds
    /// fewer lines than the L1 knows about.
    #[test]
    fn hierarchy_inclusion_and_latency_consistency(
        ops in proptest::collection::vec((0u64..2000, 0u8..8), 1..300),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
        for (slot, op) in ops {
            let addr = Addr(slot * 64);
            if op == 0 {
                h.flush(addr);
                prop_assert_eq!(h.probe(addr), HitLevel::Memory, "flushed line must be gone");
            } else {
                let before = h.probe(addr);
                let out = h.load(addr);
                prop_assert_eq!(out.level, before, "access level must match prior probe");
                prop_assert_eq!(h.probe(addr), HitLevel::L1, "loads always fill the L1");
                // Inclusion: everything in L1 is also in L3.
                prop_assert!(h.l3().probe(addr.line()), "inclusive L3 must hold L1 lines");
            }
        }
    }

    /// Latency ordering is strict: L1 < L2 < L3 < DRAM for every address.
    #[test]
    fn latency_ordering(slot in 0u64..10_000) {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
        let addr = Addr(slot * 64);
        let dram = h.load(addr).latency;
        let l1 = h.load(addr).latency;
        prop_assert!(dram > l1, "DRAM {dram} must exceed L1 {l1}");
        // Force the line out of L1 only.
        let c = Cache::new(CacheConfig::l1d_coffee_lake());
        let _ = c; // (L1-only eviction is exercised in unit tests; here we
                   // verify the peek API agrees with access outcomes.)
        prop_assert_eq!(h.peek_latency(addr), l1);
    }

    /// Tree-PLRU never evicts the most recently touched line.
    #[test]
    fn plru_never_evicts_most_recent(
        touches in proptest::collection::vec(0u64..8, 1..100),
    ) {
        let mut set = CacheSet::new(ReplacementKind::TreePlru.build(8, 0));
        for l in 0..8u64 {
            set.fill(LineAddr(l));
        }
        for t in touches {
            set.touch(LineAddr(t));
            prop_assert_ne!(
                set.eviction_candidate(),
                Some(LineAddr(t)),
                "EVC may never be the just-touched line"
            );
        }
    }
}
