//! Turning validated `racer-lab/v1` reports into dashboard pages.
//!
//! The renderer is *shape-driven*: it never hard-codes a scenario name.
//! Every `results` payload is walked recursively; arrays of objects
//! become [`racer_results::Table`]s and are classified:
//!
//! * rows with **nested point series** (`series[i].points`,
//!   `mixes[i].median_readings`) → one multi-series line chart per nested
//!   member, one color-slot per outer row, plus suite charts/tables for
//!   the outer scalar columns;
//! * flat rows with a **repeating text column** and ≥ 2 numeric columns
//!   (`timer_mitigations_eval` accuracy grids) → a grouped line chart,
//!   series keyed by the text column;
//! * flat rows with a **unique text column** (`perf_baseline` workloads,
//!   `detection_eval` profiles, `smt_contention_eval` mix summaries) →
//!   one horizontal bar chart per numeric column;
//! * flat **all-numeric** rows (`window_ablation_eval`) → a single-series
//!   line chart;
//! * anything else → a table, so no payload shape ever renders as
//!   nothing.
//!
//! Every chart also ships its full data table (collapsed), which doubles
//! as the accessibility/table view. Axis choice is a heuristic: `x` is
//! the first numeric column, `y` the remaining numeric column with the
//! most distinct values (enumeration axes like `phase` or `trials` are
//! near-constant, measurement axes vary).

use crate::html::{escape, kv_table, legend, page};
use crate::svg::{fmt_num, BarChart, LineChart, Series};
use racer_results::{Column, ColumnKind, Table, Value};
use std::fmt;
use std::fmt::Write as _;

/// One report file handed to the renderer: a display label (the file
/// path at the CLI, anything stable in tests) and the parsed document.
pub struct InputReport {
    /// Where the report came from; shown in the provenance block.
    pub label: String,
    /// The parsed `racer-lab/v1` document.
    pub doc: Value,
}

/// Registry metadata for one scenario, used for page ordering and for
/// titles when a report predates the `title`/`description` members.
pub struct ScenarioMeta {
    /// Scenario name (matches the report's `scenario` member).
    pub name: String,
    /// Paper artefact label, e.g. `Figure 8`.
    pub title: String,
    /// One-line description.
    pub description: String,
    /// Presentation index (registry order).
    pub order: usize,
}

/// One rendered file: a forward-slash relative path and its content.
#[derive(Debug)]
pub struct OutputFile {
    /// Path relative to the dashboard root, e.g. `scenarios/x.html`.
    pub path: String,
    /// Full file content.
    pub content: String,
}

/// Why a report set could not be rendered.
#[derive(Debug, PartialEq, Eq)]
pub enum ReportError {
    /// The input set was empty.
    NoReports,
    /// A document's root was not a JSON object.
    NotAnObject {
        /// The offending report's label.
        label: String,
    },
    /// A document's `schema` member was missing or not `racer-lab/v1`.
    WrongSchema {
        /// The offending report's label.
        label: String,
        /// What the `schema` member actually held.
        found: String,
    },
    /// A required envelope member was missing or of the wrong type.
    MissingField {
        /// The offending report's label.
        label: String,
        /// The member that was expected.
        field: &'static str,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::NoReports => write!(f, "no reports to render"),
            ReportError::NotAnObject { label } => {
                write!(f, "{label}: report is not a JSON object")
            }
            ReportError::WrongSchema { label, found } => {
                write!(
                    f,
                    "{label}: expected schema \"racer-lab/v1\", found {found}"
                )
            }
            ReportError::MissingField { label, field } => {
                write!(f, "{label}: report has no usable {field:?} member")
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// A validated report, borrowing from its [`InputReport`].
struct Parsed<'a> {
    label: &'a str,
    doc: &'a Value,
    scenario: &'a str,
    scale: &'a str,
    title: &'a str,
    description: &'a str,
    /// `Some((kind, message))` for a crash-isolated failed cell
    /// (`status: "failed"` with an `error` object); `None` for a
    /// successful report.
    failed: Option<(&'a str, &'a str)>,
}

/// Strict envelope validation: root object, `schema == "racer-lab/v1"`,
/// non-empty `scenario`, a `scale` string and a `results` member.
///
/// Crash-isolated failed cells (`status: "failed"` with a `null`
/// `results` and an `error` object) pass validation — the dashboard
/// renders them as visible failure banners rather than rejecting the
/// whole report set.
fn validate(report: &InputReport) -> Result<Parsed<'_>, ReportError> {
    let label = || report.label.clone();
    if report.doc.members().is_none() {
        return Err(ReportError::NotAnObject { label: label() });
    }
    match report.doc.get("schema").and_then(Value::as_str) {
        Some("racer-lab/v1") => {}
        other => {
            return Err(ReportError::WrongSchema {
                label: label(),
                found: match other {
                    Some(s) => format!("{s:?}"),
                    None => "no schema member".to_string(),
                },
            })
        }
    }
    let scenario = report
        .doc
        .get("scenario")
        .and_then(Value::as_str)
        .filter(|s| !s.is_empty())
        .ok_or(ReportError::MissingField {
            label: label(),
            field: "scenario",
        })?;
    let scale =
        report
            .doc
            .get("scale")
            .and_then(Value::as_str)
            .ok_or(ReportError::MissingField {
                label: label(),
                field: "scale",
            })?;
    if report.doc.get("results").is_none() {
        return Err(ReportError::MissingField {
            label: label(),
            field: "results",
        });
    }
    let failed = if report.doc.get("status").and_then(Value::as_str) == Some("failed") {
        let err = report.doc.get("error");
        Some((
            err.and_then(|e| e.get("kind"))
                .and_then(Value::as_str)
                .unwrap_or("error"),
            err.and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .unwrap_or("no error message recorded"),
        ))
    } else {
        None
    };
    Ok(Parsed {
        label: &report.label,
        doc: &report.doc,
        scenario,
        scale,
        title: report
            .doc
            .get("title")
            .and_then(Value::as_str)
            .unwrap_or(""),
        description: report
            .doc
            .get("description")
            .and_then(Value::as_str)
            .unwrap_or(""),
        failed,
    })
}

/// Validate one report's `racer-lab/v1` envelope without rendering.
///
/// This is the same strict check [`render_dashboard`] applies to every
/// input; callers that want to *skip* structurally invalid files instead
/// of failing the whole render (`racer-lab report --keep-going`) probe
/// each input here first.
pub fn check_input(report: &InputReport) -> Result<(), ReportError> {
    validate(report).map(|_| ())
}

/// Preset presentation order: quick before paper before anything else.
fn scale_rank(scale: &str) -> usize {
    match scale {
        "quick" => 0,
        "paper" => 1,
        _ => 2,
    }
}

/// Render one or many validated reports into the full static dashboard:
/// `index.html` plus one `scenarios/<name>.html` per scenario. Output is
/// a pure function of the inputs — byte-identical across renders.
pub fn render_dashboard(
    reports: &[InputReport],
    meta: &[ScenarioMeta],
) -> Result<Vec<OutputFile>, ReportError> {
    if reports.is_empty() {
        return Err(ReportError::NoReports);
    }
    let mut parsed = Vec::with_capacity(reports.len());
    for r in reports {
        parsed.push(validate(r)?);
    }

    // Group by scenario, keeping first-seen order, then sort the groups
    // by registry order (unknown scenarios after all known ones,
    // alphabetically) and each group's reports quick → paper → other.
    let mut groups: Vec<(&str, Vec<&Parsed<'_>>)> = Vec::new();
    for p in &parsed {
        match groups.iter_mut().find(|(name, _)| *name == p.scenario) {
            Some((_, members)) => members.push(p),
            None => groups.push((p.scenario, vec![p])),
        }
    }
    let order_of = |name: &str| {
        meta.iter()
            .find(|m| m.name == name)
            .map_or(usize::MAX, |m| m.order)
    };
    groups.sort_by(|a, b| (order_of(a.0), a.0).cmp(&(order_of(b.0), b.0)));
    for (_, members) in &mut groups {
        members.sort_by(|a, b| {
            (scale_rank(a.scale), a.scale, a.label).cmp(&(scale_rank(b.scale), b.scale, b.label))
        });
    }

    // Unique page path per scenario.
    let mut paths: Vec<(String, String)> = Vec::new(); // (scenario, path)
    for (name, _) in &groups {
        let mut stem = sanitize(name);
        let mut n = 1usize;
        while paths.iter().any(|(_, p)| p == &page_path(&stem)) {
            n += 1;
            stem = format!("{}-{n}", sanitize(name));
        }
        paths.push((name.to_string(), page_path(&stem)));
    }
    let path_of = |name: &str| -> String {
        paths
            .iter()
            .find(|(n, _)| n == name)
            .expect("every group has a path")
            .1
            .clone()
    };

    let mut files = Vec::with_capacity(groups.len() + 1);
    files.push(OutputFile {
        path: "index.html".to_string(),
        content: index_page(&groups, meta, &path_of),
    });
    for (name, members) in &groups {
        files.push(OutputFile {
            path: path_of(name),
            content: scenario_page(name, members, meta),
        });
    }
    Ok(files)
}

fn page_path(stem: &str) -> String {
    format!("scenarios/{stem}.html")
}

/// Scenario names are `[a-z0-9_]` in practice; anything else degrades to
/// `-` so the path stays portable.
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "scenario".to_string()
    } else {
        cleaned
    }
}

/// Registry metadata lookup with report-embedded fallback.
fn title_of<'a>(name: &str, members: &[&Parsed<'a>], meta: &'a [ScenarioMeta]) -> (String, String) {
    if let Some(m) = meta.iter().find(|m| m.name == name) {
        return (m.title.clone(), m.description.clone());
    }
    let first = members.first().expect("groups are non-empty");
    (first.title.to_string(), first.description.to_string())
}

// ---------------------------------------------------------------- index

fn index_page(
    groups: &[(&str, Vec<&Parsed<'_>>)],
    meta: &[ScenarioMeta],
    path_of: &dyn Fn(&str) -> String,
) -> String {
    let report_count: usize = groups.iter().map(|(_, m)| m.len()).sum();
    let mut body = String::new();
    body.push_str("<h1>racer-lab dashboard</h1>\n");
    let mut gits: Vec<&str> = Vec::new();
    for (_, members) in groups {
        for p in members {
            if let Some(g) = p.doc.get("provenance").and_then(|v| v.get("git")) {
                if let Some(g) = g.as_str() {
                    if !gits.contains(&g) {
                        gits.push(g);
                    }
                }
            }
        }
    }
    let _ = writeln!(
        body,
        "<p class=\"sub\">{} scenario{} &middot; {report_count} report{} &middot; git {}</p>",
        groups.len(),
        if groups.len() == 1 { "" } else { "s" },
        if report_count == 1 { "" } else { "s" },
        if gits.is_empty() {
            "unknown".to_string()
        } else {
            gits.iter()
                .map(|g| format!("<code>{}</code>", escape(g)))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    body.push_str(
        "<table>\n<tr><th>Scenario</th><th>Paper artefact</th>\
         <th>Description</th><th>Reports</th></tr>\n",
    );
    for (name, members) in groups {
        let (title, description) = title_of(name, members, meta);
        let mut cells: Vec<String> = Vec::new();
        for p in members {
            let prov = p.doc.get("provenance");
            let git = prov
                .and_then(|v| v.get("git"))
                .and_then(Value::as_str)
                .unwrap_or("unknown");
            let seed = p
                .doc
                .get("seed")
                .and_then(Value::as_i64)
                .map_or("?".to_string(), |s| s.to_string());
            let merged = prov
                .and_then(|v| v.get("merged"))
                .and_then(|m| m.get("shards"))
                .and_then(Value::as_array)
                .map(|shards| {
                    shards
                        .iter()
                        .filter_map(Value::as_str)
                        .collect::<Vec<_>>()
                        .join("+")
                });
            let mut cell = format!(
                "{} &middot; seed {} &middot; git <code>{}</code>",
                escape(p.scale),
                escape(&seed),
                escape(git)
            );
            if let Some(shards) = merged {
                let _ = write!(cell, " &middot; merged {}", escape(&shards));
            }
            if let Some((kind, _)) = p.failed {
                let _ = write!(
                    cell,
                    " &middot; <span class=\"failed-tag\">failed ({})</span>",
                    escape(kind)
                );
            }
            cells.push(cell);
        }
        let _ = writeln!(
            body,
            "<tr><td><a href=\"{}\"><code>{}</code></a></td><td>{}</td>\
             <td>{}</td><td>{}</td></tr>",
            escape(&path_of(name)),
            escape(name),
            escape(&title),
            escape(&description),
            cells.join("<br>")
        );
    }
    body.push_str("</table>\n");
    page("racer-lab dashboard", &body)
}

// -------------------------------------------------------- scenario page

fn scenario_page(name: &str, members: &[&Parsed<'_>], meta: &[ScenarioMeta]) -> String {
    let (title, description) = title_of(name, members, meta);
    let mut body = String::new();
    body.push_str("<p class=\"crumb\"><a href=\"../index.html\">&larr; all scenarios</a></p>\n");
    let _ = writeln!(
        body,
        "<h1><code>{}</code>{}</h1>",
        escape(name),
        if title.is_empty() {
            String::new()
        } else {
            format!(" &mdash; {}", escape(&title))
        }
    );
    if !description.is_empty() {
        let _ = writeln!(body, "<p class=\"sub\">{}</p>", escape(&description));
    }
    for p in members {
        let _ = writeln!(body, "<h2>{} preset</h2>", escape(p.scale));
        if let Some((kind, message)) = p.failed {
            let _ = writeln!(
                body,
                "<p class=\"failed\"><span class=\"failed-tag\">failed ({})</span> \
                 &mdash; {}</p>",
                escape(kind),
                escape(message)
            );
            body.push_str(&provenance_block(p));
            continue;
        }
        body.push_str(&provenance_block(p));
        if let Some(results) = p.doc.get("results") {
            render_value(&mut body, results, 3);
        }
    }
    // Quick-vs-paper deltas when both presets are present (failed cells
    // have no results to compare).
    let quick = members
        .iter()
        .find(|p| p.scale == "quick" && p.failed.is_none());
    let paper = members
        .iter()
        .find(|p| p.scale == "paper" && p.failed.is_none());
    if let (Some(q), Some(p)) = (quick, paper) {
        body.push_str(&delta_section(q, p));
    }
    page(&format!("{name} — racer-lab dashboard"), &body)
}

/// The provenance block: source file, envelope fields, generator
/// identity, merge lineage and the resolved config.
fn provenance_block(p: &Parsed<'_>) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    let code = |s: &str| format!("<code>{}</code>", escape(s));
    rows.push(("source".to_string(), code(p.label)));
    rows.push(("scale".to_string(), escape(p.scale)));
    if let Some(seed) = p.doc.get("seed").and_then(Value::as_i64) {
        rows.push(("seed".to_string(), seed.to_string()));
    }
    if let Some(det) = p.doc.get("deterministic").and_then(Value::as_bool) {
        rows.push(("deterministic".to_string(), det.to_string()));
    }
    if let Some(prov) = p.doc.get("provenance") {
        let s = |key: &str| prov.get(key).and_then(Value::as_str);
        if let (Some(generator), Some(version)) = (s("generator"), s("version")) {
            rows.push((
                "generator".to_string(),
                format!("{} {}", escape(generator), escape(version)),
            ));
        }
        if let Some(git) = s("git") {
            rows.push(("git describe".to_string(), code(git)));
        }
        if let Some(merged) = prov.get("merged") {
            let list = |key: &str| {
                merged
                    .get(key)
                    .and_then(Value::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .filter_map(Value::as_str)
                            .map(code)
                            .collect::<Vec<_>>()
                            .join("<br>")
                    })
                    .unwrap_or_default()
            };
            rows.push(("merged from".to_string(), list("sources")));
            rows.push(("merged shards".to_string(), list("shards")));
        }
    }
    if let Some(config) = p.doc.get("config").and_then(Value::members) {
        for (k, v) in config {
            rows.push((format!("config.{k}"), scalar_cell(v)));
        }
    }
    kv_table(&rows)
}

// ------------------------------------------------------- results walker

/// Heading tag for a nesting depth (h3 at the top of `results`).
fn heading(out: &mut String, depth: usize, label: &str) {
    let level = depth.clamp(3, 4);
    let _ = writeln!(out, "<h{level}><code>{}</code></h{level}>", escape(label));
}

/// Render any `results` value at `depth` (3 = top level).
fn render_value(out: &mut String, v: &Value, depth: usize) {
    if depth > 7 {
        let _ = writeln!(
            out,
            "<p><code>{}</code></p>",
            escape(&clip(&v.to_compact()))
        );
        return;
    }
    match v {
        Value::Object(members) => {
            let mut scalars: Vec<(String, String)> = Vec::new();
            let mut compound: Vec<(&str, &Value)> = Vec::new();
            for (k, val) in members {
                match val {
                    Value::Object(_) => compound.push((k, val)),
                    Value::Array(items) if !items.is_empty() => compound.push((k, val)),
                    _ => scalars.push((k.clone(), scalar_cell(val))),
                }
            }
            out.push_str(&kv_table(&scalars));
            for (k, val) in compound {
                heading(out, depth, k);
                render_value(out, val, depth + 1);
            }
        }
        Value::Array(items) => render_array(out, items, depth),
        scalar => {
            out.push_str(&kv_table(&[("value".to_string(), scalar_cell(scalar))]));
        }
    }
}

fn render_array(out: &mut String, items: &[Value], depth: usize) {
    if items.is_empty() {
        out.push_str("<p class=\"note\">(empty)</p>\n");
        return;
    }
    if let Some(table) = Table::from_rows(items) {
        render_rows_block(out, &table);
        return;
    }
    if items.iter().all(|i| matches!(i, Value::Array(_))) {
        const CAP: usize = 8;
        for (i, item) in items.iter().take(CAP).enumerate() {
            heading(out, depth.max(4), &format!("[{i}]"));
            render_value(out, item, depth + 1);
        }
        if items.len() > CAP {
            let _ = writeln!(
                out,
                "<p class=\"note\">&hellip; {} more nested arrays omitted \
                 (raw JSON has them all)</p>",
                items.len() - CAP
            );
        }
        return;
    }
    // Scalar/mixed arrays render as a clipped compact-JSON snippet;
    // serialize only until the clip cap so huge arrays stay cheap.
    let mut snippet = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            snippet.push(',');
        }
        snippet.push_str(&item.to_compact());
        if snippet.len() > 120 {
            break;
        }
    }
    if snippet.len() <= 120 {
        snippet.push(']');
    }
    let _ = writeln!(out, "<p><code>{}</code></p>", escape(&clip(&snippet)));
}

/// Complete columns of a kind.
fn complete<'t, 'a>(t: &'t Table<'a>, kind: ColumnKind) -> Vec<&'t Column<'a>> {
    t.columns()
        .iter()
        .filter(|c| c.kind() == kind && c.is_complete())
        .collect()
}

/// The chart-or-table dispatch for an array of objects.
fn render_rows_block(out: &mut String, t: &Table<'_>) {
    let nested = complete(t, ColumnKind::Rows);
    let mut charted = false;
    if nested.is_empty() {
        charted = flat_charts(out, t);
    } else {
        let label_col = complete(t, ColumnKind::Text).first().copied();
        for nc in &nested {
            charted |= nested_series_chart(out, t, nc, label_col);
        }
        // The outer rows minus their nested members are themselves a
        // suite-style table — chart its numeric columns too.
        charted |= flat_charts(out, t);
    }
    let table = data_table(t);
    if charted {
        let _ = writeln!(
            out,
            "<details><summary>data table ({} row{})</summary>\n{table}</details>",
            t.len(),
            if t.len() == 1 { "" } else { "s" }
        );
    } else {
        out.push_str(&table);
    }
}

/// One multi-series line chart from a nested point-series column: one
/// series per outer row, labeled by the first text column.
fn nested_series_chart(
    out: &mut String,
    t: &Table<'_>,
    nc: &Column<'_>,
    label_col: Option<&Column<'_>>,
) -> bool {
    // Axes are chosen once, from the first row that yields a numeric
    // pair, and every other row must plot the *same* two columns — two
    // rows may never contribute different measures to one shared axis.
    let mut series: Vec<Series> = Vec::new();
    let mut axes: Option<(String, String)> = None;
    let mut unplottable = 0usize;
    for row in 0..t.len() {
        let sub = nc.get(row).and_then(Table::from_value);
        if axes.is_none() {
            axes = sub
                .as_ref()
                .and_then(pick_xy)
                .map(|(xc, yc)| (xc.name().to_string(), yc.name().to_string()));
        }
        let columns = axes.as_ref().zip(sub.as_ref()).and_then(|((xn, yn), sub)| {
            sub.column(xn)
                .and_then(Column::numeric)
                .zip(sub.column(yn).and_then(Column::numeric))
        });
        let Some((xs, ys)) = columns else {
            unplottable += 1;
            continue;
        };
        let label = label_col
            .and_then(|c| c.get(row))
            .and_then(Value::as_str)
            .map_or_else(|| format!("row {row}"), str::to_string);
        series.push(Series {
            label,
            points: xs.into_iter().zip(ys).collect(),
        });
    }
    let Some((x_label, y_label)) = axes else {
        return false;
    };
    // The documented palette validates 8 adjacent slots; past that, fold
    // into the table instead of cycling hues.
    let folded = series.len().saturating_sub(8);
    series.truncate(8);
    let labels: Vec<String> = series.iter().map(|s| s.label.clone()).collect();
    let chart = LineChart {
        x_label: x_label.clone(),
        y_label: y_label.clone(),
        series,
    };
    let Some(svg) = chart.to_svg() else {
        return false;
    };
    let _ = writeln!(
        out,
        "<figure><figcaption><code>{}</code>: {} vs {}</figcaption>\n{}{svg}</figure>",
        escape(nc.name()),
        escape(&y_label),
        escape(&x_label),
        legend(&labels)
    );
    if folded > 0 {
        let _ = writeln!(
            out,
            "<p class=\"note\">{folded} further series omitted from the chart \
             (8-slot palette cap) &mdash; all rows are in the data table</p>"
        );
    }
    if unplottable > 0 {
        let _ = writeln!(
            out,
            "<p class=\"note\">{unplottable} row(s) had no plottable \
             <code>{x_esc}</code>/<code>{y_esc}</code> pair and are chart-omitted \
             &mdash; see the data table</p>",
            x_esc = escape(&x_label),
            y_esc = escape(&y_label)
        );
    }
    true
}

/// Charts for flat rows (no nested columns considered): grouped lines,
/// a single line, or per-column bars. Returns whether anything plotted.
fn flat_charts(out: &mut String, t: &Table<'_>) -> bool {
    let numeric = complete(t, ColumnKind::Numeric);
    let text = complete(t, ColumnKind::Text);
    if numeric.is_empty() || t.is_empty() {
        return false;
    }

    // Grouped sweep: a text column whose values repeat.
    if numeric.len() >= 2 {
        let group_col = text.iter().find(|c| {
            let mut distinct: Vec<&str> = Vec::new();
            for row in 0..t.len() {
                if let Some(v) = c.get(row).and_then(Value::as_str) {
                    if !distinct.contains(&v) {
                        distinct.push(v);
                    }
                }
            }
            distinct.len() < t.len() && distinct.len() > 1
        });
        if let Some(group_col) = group_col {
            if let Some((xc, yc)) = pick_xy(t) {
                let (xs, ys) = (
                    xc.numeric().expect("picked numeric"),
                    yc.numeric().expect("picked numeric"),
                );
                let mut series: Vec<Series> = Vec::new();
                for row in 0..t.len() {
                    let key = group_col
                        .get(row)
                        .and_then(Value::as_str)
                        .unwrap_or_default();
                    let s = match series.iter_mut().find(|s| s.label == key) {
                        Some(s) => s,
                        None => {
                            series.push(Series {
                                label: key.to_string(),
                                points: Vec::new(),
                            });
                            series.last_mut().expect("just pushed")
                        }
                    };
                    s.points.push((xs[row], ys[row]));
                }
                let folded = series.len().saturating_sub(8);
                series.truncate(8);
                let labels: Vec<String> = series.iter().map(|s| s.label.clone()).collect();
                let chart = LineChart {
                    x_label: xc.name().to_string(),
                    y_label: yc.name().to_string(),
                    series,
                };
                if let Some(svg) = chart.to_svg() {
                    let _ = writeln!(
                        out,
                        "<figure><figcaption>{} vs {} by <code>{}</code></figcaption>\n\
                         {}{svg}</figure>",
                        escape(yc.name()),
                        escape(xc.name()),
                        escape(group_col.name()),
                        legend(&labels)
                    );
                    if folded > 0 {
                        let _ = writeln!(
                            out,
                            "<p class=\"note\">{folded} further series omitted from the \
                             chart (8-slot palette cap) &mdash; all rows are in the data \
                             table</p>"
                        );
                    }
                    return true;
                }
            }
        }
    }

    // Suite-style rows: a unique text key → one bar chart per measure
    // (one axis per chart; two measures never share a scale). A
    // non-unique key (e.g. a sweep collapsed to a single group by an
    // override) is not a suite — fall through to the line chart below.
    let unique_key = text.first().filter(|key| {
        let mut seen: Vec<&str> = Vec::new();
        (0..t.len()).all(|row| {
            let Some(v) = key.get(row).and_then(Value::as_str) else {
                return false;
            };
            if seen.contains(&v) {
                false
            } else {
                seen.push(v);
                true
            }
        })
    });
    if let Some(key) = unique_key {
        if t.len() <= 40 {
            let cats: Vec<String> = (0..t.len())
                .map(|row| {
                    key.get(row)
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string()
                })
                .collect();
            let mut plotted = false;
            for col in &numeric {
                let values = col.numeric().expect("complete numeric");
                let chart = BarChart {
                    value_label: col.name().to_string(),
                    bars: cats.iter().cloned().zip(values).collect(),
                };
                if let Some(svg) = chart.to_svg() {
                    let _ = writeln!(
                        out,
                        "<figure><figcaption>{} by <code>{}</code></figcaption>\n{svg}</figure>",
                        escape(col.name()),
                        escape(key.name())
                    );
                    plotted = true;
                }
            }
            return plotted;
        }
        let _ = writeln!(
            out,
            "<p class=\"note\">{} rows &mdash; too many categories to chart, \
             see the data table</p>",
            t.len()
        );
        return false;
    }

    // All-numeric sweep.
    if numeric.len() >= 2 && t.len() >= 2 {
        if let Some((xc, yc)) = pick_xy(t) {
            let points: Vec<(f64, f64)> = xc
                .numeric()
                .expect("picked numeric")
                .into_iter()
                .zip(yc.numeric().expect("picked numeric"))
                .collect();
            let chart = LineChart {
                x_label: xc.name().to_string(),
                y_label: yc.name().to_string(),
                series: vec![Series {
                    label: yc.name().to_string(),
                    points,
                }],
            };
            if let Some(svg) = chart.to_svg() {
                let _ = writeln!(
                    out,
                    "<figure><figcaption>{} vs {}</figcaption>\n{svg}</figure>",
                    escape(yc.name()),
                    escape(xc.name())
                );
                return true;
            }
        }
    }
    false
}

/// Axis heuristic: `x` is the first complete numeric column, `y` the
/// remaining numeric column with the most distinct values — enumeration
/// axes (`phase`, `trials`) are near-constant, measurements vary.
fn pick_xy<'t, 'a>(t: &'t Table<'a>) -> Option<(&'t Column<'a>, &'t Column<'a>)> {
    let numeric = complete(t, ColumnKind::Numeric);
    let (x, rest) = numeric.split_first()?;
    let distinct = |col: &Column<'_>| {
        let mut vs = col.numeric().expect("complete numeric");
        vs.sort_by(f64::total_cmp);
        vs.dedup();
        vs.len()
    };
    // Strictly-greater keeps the earliest column on ties (member order
    // is meaningful: scenarios emit their primary measurement first).
    let mut best: Option<(&Column<'_>, usize)> = None;
    for c in rest {
        let d = distinct(c);
        if best.is_none_or(|(_, bd)| d > bd) {
            best = Some((c, d));
        }
    }
    Some((x, best?.0))
}

// --------------------------------------------------------------- tables

/// Render one scalar (or small compound) value as an HTML table cell.
fn scalar_cell(v: &Value) -> String {
    match v {
        Value::Null => "&ndash;".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => fmt_num(*f),
        Value::Str(s) => escape(s),
        Value::Array(items) => {
            if items.iter().all(|i| matches!(i, Value::Object(_))) && !items.is_empty() {
                format!(
                    "<span class=\"note\">[{} row{}]</span>",
                    items.len(),
                    if items.len() == 1 { "" } else { "s" }
                )
            } else {
                format!("<code>{}</code>", escape(&clip(&v.to_compact())))
            }
        }
        Value::Object(_) => format!("<code>{}</code>", escape(&clip(&v.to_compact()))),
    }
}

fn clip(s: &str) -> String {
    const CAP: usize = 120;
    if s.len() <= CAP {
        return s.to_string();
    }
    let mut end = CAP;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// The full data table for an array of objects (the chart's table view).
/// Large tables are visibly truncated, never silently.
fn data_table(t: &Table<'_>) -> String {
    const ROW_CAP: usize = 200;
    let mut out = String::from("<table>\n<tr>");
    for col in t.columns() {
        let _ = write!(out, "<th>{}</th>", escape(col.name()));
    }
    out.push_str("</tr>\n");
    for row in 0..t.len().min(ROW_CAP) {
        out.push_str("<tr>");
        for col in t.columns() {
            let cell = col.get(row).map_or("&ndash;".to_string(), scalar_cell);
            let class = if matches!(col.kind(), ColumnKind::Numeric) {
                " class=\"num\""
            } else {
                ""
            };
            let _ = write!(out, "<td{class}>{cell}</td>");
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
    if t.len() > ROW_CAP {
        let _ = writeln!(
            out,
            "<p class=\"note\">&hellip; {} more rows omitted &mdash; the raw JSON \
             report has them all</p>",
            t.len() - ROW_CAP
        );
    }
    out
}

// --------------------------------------------------------------- deltas

/// Is this value an array of objects (a row table)?
fn is_row_table(v: &Value) -> bool {
    v.as_array()
        .is_some_and(|items| !items.is_empty() && items.iter().all(|i| i.members().is_some()))
}

/// Collect every numeric leaf of `v` as `(path, value)`. Row tables are
/// skipped wherever they appear (including a bare-array `results`
/// root): positional indices don't line up across presets (a paper
/// sweep has more cells), so those values are compared cell-by-cell via
/// [`table_deltas`] instead.
fn numeric_leaves(v: &Value, path: &str, out: &mut Vec<(String, f64)>) {
    if is_row_table(v) {
        return;
    }
    match v {
        Value::Int(i) => out.push((path.to_string(), *i as f64)),
        Value::Float(f) if f.is_finite() => out.push((path.to_string(), *f)),
        Value::Object(members) => {
            for (k, val) in members {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                numeric_leaves(val, &sub, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                numeric_leaves(item, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Identity-key column names for cross-preset cell matching: all
/// complete text columns, extended with leading numeric columns until
/// the keys are unique (a sweep's x axis joins the key, a suite's
/// unique name column suffices alone). `None` when no unique identity
/// exists.
fn key_column_names(t: &Table<'_>) -> Option<Vec<String>> {
    let text = complete(t, ColumnKind::Text);
    let numeric = complete(t, ColumnKind::Numeric);
    let mut key_cols: Vec<&Column<'_>> = text;
    let mut extra = numeric.into_iter();
    loop {
        let names: Vec<String> = key_cols.iter().map(|c| c.name().to_string()).collect();
        if !names.is_empty() && keys_with(t, &names).is_some() {
            return Some(names);
        }
        key_cols.push(extra.next()?);
    }
}

/// The per-row keys `name=value, …` over the named columns; `None` when
/// a column is missing/incomplete or the keys collide.
fn keys_with(t: &Table<'_>, names: &[String]) -> Option<Vec<String>> {
    let cols: Vec<&Column<'_>> = names
        .iter()
        .map(|n| t.column(n).filter(|c| c.is_complete()))
        .collect::<Option<_>>()?;
    let keys: Vec<String> = (0..t.len())
        .map(|row| {
            cols.iter()
                .map(|c| {
                    format!(
                        "{}={}",
                        c.name(),
                        c.get(row).map_or(String::new(), |v| match v {
                            Value::Str(s) => s.clone(),
                            other => other.to_compact(),
                        })
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    if sorted.windows(2).all(|w| w[0] != w[1]) {
        Some(keys)
    } else {
        None
    }
}

/// Cell-aligned deltas for one shared row-table member of `results`:
/// rows match on their identity key, and every numeric non-key column is
/// a compared measure. The key columns are the *union* of what each
/// preset needs for uniqueness (adding columns preserves uniqueness), so
/// a quick sweep that happens to be unique on fewer columns still lines
/// up against the paper run.
fn table_deltas(member: &str, qv: &Value, pv: &Value, out: &mut Vec<(String, f64, f64)>) {
    let (Some(qt), Some(pt)) = (Table::from_value(qv), Table::from_value(pv)) else {
        return;
    };
    let (Some(qnames), Some(pnames)) = (key_column_names(&qt), key_column_names(&pt)) else {
        return;
    };
    let mut key_names = qnames;
    for n in pnames {
        if !key_names.contains(&n) {
            key_names.push(n);
        }
    }
    let (Some(qkeys), Some(pkeys)) = (keys_with(&qt, &key_names), keys_with(&pt, &key_names))
    else {
        return;
    };
    let measures: Vec<&Column<'_>> = complete(&qt, ColumnKind::Numeric)
        .into_iter()
        .filter(|c| !key_names.iter().any(|k| k == c.name()))
        .collect();
    for (qrow, key) in qkeys.iter().enumerate() {
        let Some(prow) = pkeys.iter().position(|k| k == key) else {
            continue;
        };
        for m in &measures {
            let (Some(qval), Some(pval)) = (
                m.get(qrow).and_then(Value::as_f64),
                pt.column(m.name())
                    .and_then(|c| c.get(prow))
                    .and_then(Value::as_f64),
            ) else {
                continue;
            };
            out.push((format!("{member}[{key}].{}", m.name()), qval, pval));
        }
    }
}

/// The quick-vs-paper comparison table over shared numeric result paths.
fn delta_section(quick: &Parsed<'_>, paper: &Parsed<'_>) -> String {
    const ROW_CAP: usize = 40;
    let mut q = Vec::new();
    let mut p = Vec::new();
    if let Some(results) = quick.doc.get("results") {
        numeric_leaves(results, "", &mut q);
    }
    if let Some(results) = paper.doc.get("results") {
        numeric_leaves(results, "", &mut p);
    }
    let mut shared: Vec<(String, f64, f64)> = q
        .iter()
        .filter_map(|(path, qv)| {
            p.iter()
                .find(|(pp, _)| pp == path)
                .map(|(_, pv)| (path.clone(), *qv, *pv))
        })
        .collect();
    // Row tables compare cell-by-cell (identity keys), not by position —
    // both presets cover the same cells at different scale. A bare-array
    // `results` root is itself the row table.
    match (quick.doc.get("results"), paper.doc.get("results")) {
        (Some(qr), Some(pr)) if is_row_table(qr) && is_row_table(pr) => {
            table_deltas("results", qr, pr, &mut shared);
        }
        (Some(qr), Some(pr)) => {
            for (member, qv) in qr.members().unwrap_or(&[]) {
                if !is_row_table(qv) {
                    continue;
                }
                if let Some(pv) = pr.get(member).filter(|pv| is_row_table(pv)) {
                    table_deltas(member, qv, pv, &mut shared);
                }
            }
        }
        _ => {}
    }
    if shared.is_empty() {
        return String::new();
    }
    let mut out = String::from("<h2>quick vs paper</h2>\n");
    out.push_str(
        "<p class=\"sub\">results shared by the two presets &mdash; scalars by \
         path, sweep/suite rows matched on their identity key</p>\n",
    );
    out.push_str(
        "<table>\n<tr><th>result</th><th>quick</th><th>paper</th>\
         <th>&Delta; (paper &minus; quick)</th></tr>\n",
    );
    for (path, qv, pv) in shared.iter().take(ROW_CAP) {
        let delta = pv - qv;
        let rel = if *qv != 0.0 {
            format!(" ({}%)", fmt_num(delta / qv.abs() * 100.0))
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}{}</td></tr>",
            escape(path),
            fmt_num(*qv),
            fmt_num(*pv),
            fmt_num(delta),
            rel
        );
    }
    out.push_str("</table>\n");
    if shared.len() > ROW_CAP {
        let _ = writeln!(
            out,
            "<p class=\"note\">&hellip; {} more shared values omitted</p>",
            shared.len() - ROW_CAP
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scenario: &str, scale: &str, results: Value) -> InputReport {
        InputReport {
            label: format!("{scenario}-{scale}.json"),
            doc: Value::object()
                .with("schema", "racer-lab/v1")
                .with("scenario", scenario)
                .with("title", "Figure T")
                .with("description", "a test scenario")
                .with("scale", scale)
                .with("seed", 7)
                .with("deterministic", true)
                .with("config", Value::object().with("trials", 3))
                .with(
                    "provenance",
                    Value::object()
                        .with("generator", "racer-lab")
                        .with("version", "0.1.0")
                        .with("git", "abc1234"),
                )
                .with("results", results),
        }
    }

    fn sweep_results() -> Value {
        let point = |timer: &str, rounds: i64, acc: f64| {
            Value::object()
                .with("timer", timer)
                .with("rounds", rounds)
                .with("accuracy", acc)
                .with("trials", 3)
        };
        Value::object().with(
            "points",
            Value::Array(vec![
                point("5us", 500, 0.6),
                point("5us", 8000, 1.0),
                point("1ms", 500, 0.5),
                point("1ms", 8000, 0.5),
            ]),
        )
    }

    #[test]
    fn dashboard_has_index_and_scenario_pages() {
        let reports = vec![report("sweep_eval", "quick", sweep_results())];
        let files = render_dashboard(&reports, &[]).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].path, "index.html");
        assert_eq!(files[1].path, "scenarios/sweep_eval.html");
        assert!(files[0].content.contains("sweep_eval"));
        assert!(files[0].content.contains("seed 7"));
        assert!(files[0].content.contains("abc1234"));
    }

    #[test]
    fn grouped_sweep_renders_a_multi_series_line_chart() {
        let reports = vec![report("sweep_eval", "quick", sweep_results())];
        let files = render_dashboard(&reports, &[]).unwrap();
        let pg = &files[1].content;
        assert!(pg.contains("<svg"), "expected an inline SVG plot");
        assert!(
            pg.contains("accuracy vs rounds by <code>timer</code>"),
            "axis heuristic must pick accuracy (varies) over trials (constant)"
        );
        assert!(pg.contains("swatch s1") && pg.contains("swatch s2"));
        assert!(pg.contains("data table (4 rows)"));
    }

    #[test]
    fn nested_series_and_suite_rows_render_charts() {
        let series = |label: &str, slope: f64| {
            Value::object()
                .with("target_op", label)
                .with("slope", slope)
                .with(
                    "points",
                    Value::Array(
                        (1..4)
                            .map(|i| Value::object().with("target_ops", i).with("ref_ops", i * 3))
                            .collect(),
                    ),
                )
        };
        let results = Value::object().with(
            "series",
            Value::Array(vec![series("add", 0.8), series("mul", 3.0)]),
        );
        let reports = vec![report("granularity", "quick", results)];
        let files = render_dashboard(&reports, &[]).unwrap();
        let pg = &files[1].content;
        assert!(pg.contains("ref_ops vs target_ops"), "nested line chart");
        assert!(pg.contains("slope by <code>target_op</code>"), "suite bars");
    }

    #[test]
    fn bool_matrix_falls_back_to_a_table() {
        let row = |name: &str, works: bool| {
            Value::object()
                .with("countermeasure", name)
                .with("works", works)
        };
        let results = Value::object().with(
            "matrix",
            Value::Array(vec![row("baseline", true), row("in-order", false)]),
        );
        let files = render_dashboard(&[report("matrix_eval", "quick", results)], &[]).unwrap();
        let pg = &files[1].content;
        assert!(!pg.contains("<svg"), "nothing numeric to plot");
        assert!(pg.contains("<td>baseline</td>"));
        assert!(pg.contains("<td>false</td>"));
    }

    #[test]
    fn quick_vs_paper_delta_table_appears() {
        let results = |acc: f64| {
            Value::object().with("accuracy", acc).with(
                "points",
                Value::Array(vec![Value::object().with("x", 1).with("y", 2)]),
            )
        };
        let reports = vec![
            report("eval", "quick", results(0.8)),
            report("eval", "paper", results(0.9)),
        ];
        let files = render_dashboard(&reports, &[]).unwrap();
        let pg = &files[1].content;
        assert!(pg.contains("quick vs paper"));
        assert!(pg.contains("<code>accuracy</code>"));
        assert!(
            !pg.contains("points[0].y"),
            "per-point data is excluded from deltas"
        );
    }

    #[test]
    fn registry_meta_orders_scenarios_and_supplies_titles() {
        let reports = vec![
            report("zzz_first_in_registry", "quick", sweep_results()),
            report("aaa_not_registered", "quick", sweep_results()),
        ];
        let meta = vec![ScenarioMeta {
            name: "zzz_first_in_registry".to_string(),
            title: "Figure 1".to_string(),
            description: "registered".to_string(),
            order: 0,
        }];
        let files = render_dashboard(&reports, &meta).unwrap();
        // Registered scenario sorts first despite its name.
        assert_eq!(files[1].path, "scenarios/zzz_first_in_registry.html");
        assert_eq!(files[2].path, "scenarios/aaa_not_registered.html");
        assert!(files[1].content.contains("Figure 1"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let reports = vec![
            report("eval", "quick", sweep_results()),
            report("eval", "paper", sweep_results()),
        ];
        let a = render_dashboard(&reports, &[]).unwrap();
        let b = render_dashboard(&reports, &[]).unwrap();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.path, fb.path);
            assert_eq!(fa.content, fb.content);
        }
    }

    #[test]
    fn validation_errors_are_specific() {
        assert_eq!(
            render_dashboard(&[], &[]).unwrap_err(),
            ReportError::NoReports
        );

        let bad = InputReport {
            label: "bad.json".to_string(),
            doc: Value::Int(3),
        };
        assert!(matches!(
            render_dashboard(&[bad], &[]).unwrap_err(),
            ReportError::NotAnObject { .. }
        ));

        let wrong = InputReport {
            label: "wrong.json".to_string(),
            doc: Value::object().with("schema", "other/v2"),
        };
        match render_dashboard(&[wrong], &[]).unwrap_err() {
            ReportError::WrongSchema { found, .. } => assert!(found.contains("other/v2")),
            other => panic!("expected WrongSchema, got {other:?}"),
        }

        let missing = InputReport {
            label: "missing.json".to_string(),
            doc: Value::object()
                .with("schema", "racer-lab/v1")
                .with("scenario", "x")
                .with("scale", "quick"),
        };
        assert_eq!(
            render_dashboard(&[missing], &[]).unwrap_err(),
            ReportError::MissingField {
                label: "missing.json".to_string(),
                field: "results"
            }
        );
    }

    #[test]
    fn single_group_sweeps_render_a_line_chart_not_bars() {
        // One timer only (sweep collapsed by an override): the constant
        // text column is not a suite key, the rounds sweep still plots.
        let point = |rounds: i64, acc: f64| {
            Value::object()
                .with("timer", "5us")
                .with("rounds", rounds)
                .with("accuracy", acc)
        };
        let results = Value::object().with(
            "points",
            Value::Array(vec![point(500, 0.6), point(2000, 0.8), point(8000, 1.0)]),
        );
        let files = render_dashboard(&[report("one_timer", "quick", results)], &[]).unwrap();
        let pg = &files[1].content;
        assert!(
            pg.contains("accuracy vs rounds</figcaption>"),
            "constant-key sweep must draw the line chart"
        );
        assert!(
            !pg.contains("by <code>timer</code>"),
            "a constant text column is not a suite key"
        );
    }

    #[test]
    fn delta_keys_union_across_presets_with_different_depths() {
        // Quick rows are unique on the text column alone; paper needs
        // text+rounds. The union key must still line the cells up.
        let point = |timer: &str, rounds: i64, acc: f64| {
            Value::object()
                .with("timer", timer)
                .with("rounds", rounds)
                .with("accuracy", acc)
        };
        let quick = Value::object().with(
            "points",
            Value::Array(vec![point("5us", 500, 0.6), point("1ms", 500, 0.5)]),
        );
        let paper = Value::object().with(
            "points",
            Value::Array(vec![
                point("5us", 500, 0.75),
                point("5us", 8000, 1.0),
                point("1ms", 500, 0.5),
                point("1ms", 8000, 0.625),
            ]),
        );
        let reports = vec![
            report("eval", "quick", quick),
            report("eval", "paper", paper),
        ];
        let files = render_dashboard(&reports, &[]).unwrap();
        let pg = &files[1].content;
        assert!(
            pg.contains("points[timer=5us, rounds=500].accuracy"),
            "shared cells must appear despite asymmetric key depth"
        );
        assert!(
            !pg.contains("rounds=8000].accuracy"),
            "paper-only cells don't match"
        );
    }

    #[test]
    fn bare_array_results_get_cell_matched_deltas_not_positional_ones() {
        let row = |name: &str, v: f64| Value::object().with("name", name).with("v", v);
        // Different row orders across presets: positional pairing would
        // compare a↔b; identity keys must pair a↔a.
        let quick = Value::Array(vec![row("a", 1.0), row("b", 2.0)]);
        let paper = Value::Array(vec![row("b", 20.0), row("a", 10.0)]);
        let reports = vec![
            report("bare", "quick", quick),
            report("bare", "paper", paper),
        ];
        let files = render_dashboard(&reports, &[]).unwrap();
        let pg = &files[1].content;
        assert!(pg.contains(
            "results[name=a].v</code></td><td class=\"num\">1</td><td class=\"num\">10</td>"
        ));
        assert!(!pg.contains("[0].v"), "no positional delta paths");
    }

    #[test]
    fn nan_and_overflow_values_render_without_panicking() {
        // NaN in a numeric column (pick_xy's distinct sort) and +inf from
        // an out-of-range integer literal must both degrade to output.
        let results = Value::object().with(
            "points",
            Value::Array(vec![
                Value::object()
                    .with("x", 1)
                    .with("y", f64::NAN)
                    .with("z", f64::INFINITY),
                Value::object().with("x", 2).with("y", 0.5).with("z", 1.0),
            ]),
        );
        let files = render_dashboard(&[report("weird", "quick", results)], &[]).unwrap();
        assert!(files[1].content.contains("<table"));
    }

    #[test]
    fn failed_cells_render_a_banner_and_an_index_marker() {
        let mut failed = report("eval", "paper", Value::Null);
        failed.doc = failed.doc.with("status", "failed").with(
            "error",
            Value::object()
                .with("kind", "scenario-panic")
                .with("message", "index out of bounds"),
        );
        let ok = report("eval", "quick", sweep_results());
        let files = render_dashboard(&[ok, failed], &[]).unwrap();
        let index = &files[0].content;
        assert!(
            index.contains("failed (scenario-panic)"),
            "index must mark the failed cell"
        );
        let pg = &files[1].content;
        assert!(
            pg.contains("class=\"failed\"") && pg.contains("index out of bounds"),
            "scenario page must carry a visible failure banner with the message"
        );
        assert!(
            !pg.contains("quick vs paper"),
            "a failed preset contributes no delta rows"
        );
    }

    #[test]
    fn check_input_mirrors_render_validation() {
        assert!(check_input(&report("eval", "quick", sweep_results())).is_ok());
        let mut failed = report("eval", "quick", Value::Null);
        failed.doc = failed.doc.with("status", "failed").with(
            "error",
            Value::object().with("kind", "timeout").with("message", "m"),
        );
        assert!(check_input(&failed).is_ok(), "failed cells are valid input");
        let wrong = InputReport {
            label: "w.json".to_string(),
            doc: Value::object().with("schema", "other/v2"),
        };
        assert!(matches!(
            check_input(&wrong),
            Err(ReportError::WrongSchema { .. })
        ));
    }

    #[test]
    fn merged_reports_show_their_lineage() {
        let mut r = report("eval", "paper", sweep_results());
        let Value::Object(members) = &mut r.doc else {
            unreachable!()
        };
        for (k, v) in members.iter_mut() {
            if k == "provenance" {
                *v = v.clone().with(
                    "merged",
                    Value::object()
                        .with("sources", vec!["a.json", "b.json"])
                        .with("shards", vec!["1/2", "2/2"]),
                );
            }
        }
        let files = render_dashboard(&[r], &[]).unwrap();
        assert!(files[0].content.contains("merged 1/2+2/2"));
        assert!(files[1].content.contains("merged from"));
        assert!(files[1].content.contains("a.json"));
    }
}
