//! HTML building blocks: escaping, the page shell, small fragments.
//!
//! Everything is string concatenation into pre-sized buffers — the
//! dashboard is a *static* artifact and must render byte-identically for
//! identical inputs, so there is no templating engine, no timestamps and
//! no randomness anywhere in this module.

use std::fmt::Write as _;

/// Escape text for HTML element content and attribute values.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// The embedded stylesheet, shared by every page.
///
/// Colors follow the chart-palette reference: categorical series slots
/// `--s1..--s8` in a fixed order (never cycled), recessive grid/axis ink,
/// and a dark scheme that is *selected* (its own steps for the dark
/// surface) rather than an automatic inversion. Text never wears a series
/// color; identity is carried by swatches and marks.
const STYLE: &str = "\
:root{color-scheme:light;--page:#f9f9f7;--surface:#fcfcfb;--ink:#0b0b0b;--ink2:#52514e;\
--muted:#898781;--grid:#e1e0d9;--axis:#c3c2b7;--border:rgba(11,11,11,0.10);\
--s1:#2a78d6;--s2:#eb6834;--s3:#1baf7a;--s4:#eda100;--s5:#e87ba4;--s6:#008300;\
--s7:#4a3aa7;--s8:#e34948;}\n\
@media (prefers-color-scheme:dark){:root{color-scheme:dark;--page:#0d0d0d;\
--surface:#1a1a19;--ink:#ffffff;--ink2:#c3c2b7;--muted:#898781;--grid:#2c2c2a;\
--axis:#383835;--border:rgba(255,255,255,0.10);\
--s1:#3987e5;--s2:#d95926;--s3:#199e70;--s4:#c98500;--s5:#d55181;--s6:#008300;\
--s7:#9085e9;--s8:#e66767;}}\n\
body{margin:0;padding:24px;background:var(--page);color:var(--ink);\
font:14px/1.5 system-ui,-apple-system,'Segoe UI',sans-serif;}\n\
main{max-width:960px;margin:0 auto;}\n\
h1{font-size:22px;margin:0 0 4px;}h2{font-size:17px;margin:28px 0 8px;}\n\
h3{font-size:15px;margin:20px 0 6px;}h4{font-size:14px;margin:14px 0 4px;color:var(--ink2);}\n\
a{color:var(--s1);}code{font:12px/1.4 ui-monospace,monospace;}\n\
p.sub{color:var(--ink2);margin:0 0 16px;}\n\
table{border-collapse:collapse;margin:8px 0;background:var(--surface);\
border:1px solid var(--border);border-radius:6px;}\n\
th,td{padding:4px 10px;text-align:left;border-bottom:1px solid var(--grid);\
font-variant-numeric:tabular-nums;}\n\
th{color:var(--ink2);font-weight:600;}tr:last-child td{border-bottom:none;}\n\
td.num{text-align:right;}\n\
.kv td:first-child{color:var(--ink2);}\n\
figure{margin:12px 0;padding:12px;background:var(--surface);\
border:1px solid var(--border);border-radius:8px;}\n\
figcaption{color:var(--ink2);font-size:13px;margin-bottom:6px;}\n\
.legend{display:flex;flex-wrap:wrap;gap:4px 14px;margin:6px 0 2px;color:var(--ink2);\
font-size:12px;}\n\
.legend .swatch{display:inline-block;width:10px;height:10px;border-radius:2px;\
margin-right:5px;vertical-align:-1px;}\n\
.swatch.s1{background:var(--s1);}.swatch.s2{background:var(--s2);}\n\
.swatch.s3{background:var(--s3);}.swatch.s4{background:var(--s4);}\n\
.swatch.s5{background:var(--s5);}.swatch.s6{background:var(--s6);}\n\
.swatch.s7{background:var(--s7);}.swatch.s8{background:var(--s8);}\n\
svg{display:block;max-width:100%;height:auto;}\n\
svg .grid{stroke:var(--grid);stroke-width:1;}\n\
svg .axis{stroke:var(--axis);stroke-width:1;}\n\
svg .tick{fill:var(--muted);font-size:11px;}\n\
svg .axis-label{fill:var(--ink2);font-size:12px;}\n\
svg .val{fill:var(--ink2);font-size:11px;}\n\
svg .cat{fill:var(--ink);font-size:12px;}\n\
svg .line.s1{stroke:var(--s1);}svg .line.s2{stroke:var(--s2);}\n\
svg .line.s3{stroke:var(--s3);}svg .line.s4{stroke:var(--s4);}\n\
svg .line.s5{stroke:var(--s5);}svg .line.s6{stroke:var(--s6);}\n\
svg .line.s7{stroke:var(--s7);}svg .line.s8{stroke:var(--s8);}\n\
svg .line{fill:none;stroke-width:2;stroke-linejoin:round;stroke-linecap:round;}\n\
svg .dot.s1{fill:var(--s1);}svg .dot.s2{fill:var(--s2);}\n\
svg .dot.s3{fill:var(--s3);}svg .dot.s4{fill:var(--s4);}\n\
svg .dot.s5{fill:var(--s5);}svg .dot.s6{fill:var(--s6);}\n\
svg .dot.s7{fill:var(--s7);}svg .dot.s8{fill:var(--s8);}\n\
svg .bar{fill:var(--s1);}\n\
details{margin:8px 0;}summary{cursor:pointer;color:var(--ink2);font-size:13px;}\n\
.note{color:var(--muted);font-size:12px;margin:4px 0;}\n\
.crumb{font-size:13px;margin-bottom:16px;}\n\
p.failed{background:rgba(227,73,72,0.10);border:1px solid var(--s8);\
border-radius:6px;padding:8px 12px;margin:8px 0;}\n\
.failed-tag{color:var(--s8);font-weight:600;}\n";

/// Wrap `body` in the full page shell with the shared stylesheet.
pub(crate) fn page(title: &str, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + STYLE.len() + 512);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n");
    let _ = writeln!(out, "<title>{}</title>", escape(title));
    let _ = writeln!(out, "<style>\n{STYLE}</style>");
    out.push_str("</head>\n<body>\n<main>\n");
    out.push_str(body);
    out.push_str("</main>\n</body>\n</html>\n");
    out
}

/// A two-column key/value table (`class="kv"`); values are pre-rendered
/// HTML fragments.
pub(crate) fn kv_table(rows: &[(String, String)]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from("<table class=\"kv\">\n");
    for (k, v) in rows {
        let _ = writeln!(out, "<tr><td>{}</td><td>{v}</td></tr>", escape(k));
    }
    out.push_str("</table>\n");
    out
}

/// The legend row for a multi-series chart: one fixed-order swatch per
/// series (identity is never color-alone — labels sit beside swatches in
/// text ink).
pub(crate) fn legend(labels: &[String]) -> String {
    if labels.len() < 2 {
        return String::new();
    }
    let mut out = String::from("<div class=\"legend\">");
    for (i, label) in labels.iter().enumerate() {
        let _ = write!(
            out,
            "<span><span class=\"swatch s{}\"></span>{}</span>",
            i % 8 + 1,
            escape(label)
        );
    }
    out.push_str("</div>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_five_metacharacters() {
        assert_eq!(
            escape(r#"<a href="x">&'q'</a>"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;q&#39;&lt;/a&gt;"
        );
    }

    #[test]
    fn page_shell_is_complete_html() {
        let p = page("t&t", "<p>body</p>");
        assert!(p.starts_with("<!DOCTYPE html>"));
        assert!(p.contains("<title>t&amp;t</title>"));
        assert!(p.contains("<p>body</p>"));
        assert!(p.ends_with("</html>\n"));
    }

    #[test]
    fn legend_needs_two_series() {
        assert_eq!(legend(&["solo".into()]), "");
        let l = legend(&["a".into(), "b".into()]);
        assert!(l.contains("swatch s1"));
        assert!(l.contains("swatch s2"));
    }
}
