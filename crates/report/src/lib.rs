//! `racer-report` — a static HTML dashboard for `racer-lab/v1` reports.
//!
//! The paper's contribution is ultimately a set of *figures*; the
//! experiment runner stops at `results/*.json`. This crate closes the
//! gap: it renders one or many report documents into a self-contained
//! dashboard — an `index.html` listing every scenario with its
//! provenance (git describe, seed, preset, merge lineage), plus one page
//! per scenario with inline-SVG plots generated straight from the
//! structured point series (line/scatter for sweeps, bar charts for
//! suite-style rows, tables for everything else) and a quick-vs-paper
//! delta table when both presets are present.
//!
//! Like `racer-results` it is **dependency-free** (the workspace builds
//! offline) and **deterministic**: the output is a pure function of the
//! input reports, so golden tests can pin rendered pages byte for byte
//! and CI can diff dashboards across runs. No JavaScript, no timestamps,
//! no external assets — the rendered directory works from `file://` and
//! as a CI artifact.
//!
//! ```
//! use racer_report::{render_dashboard, InputReport};
//! use racer_results::Value;
//!
//! let doc = Value::object()
//!     .with("schema", "racer-lab/v1")
//!     .with("scenario", "window_ablation_eval")
//!     .with("scale", "quick")
//!     .with(
//!         "results",
//!         Value::object().with(
//!             "points",
//!             Value::Array(vec![
//!                 Value::object().with("rs_size", 32).with("reach", 54),
//!                 Value::object().with("rs_size", 60).with("reach", 97),
//!             ]),
//!         ),
//!     );
//! let report = InputReport { label: "results/window_ablation_eval.json".into(), doc };
//! let files = render_dashboard(&[report], &[]).unwrap();
//! assert_eq!(files[0].path, "index.html");
//! assert!(files[1].content.contains("<svg"), "sweeps render as SVG plots");
//! ```
//!
//! The shape-introspection that drives plot selection lives in
//! [`racer_results::Table`]; the chart/table dispatch (documented in
//! `src/dashboard.rs`) is deliberately scenario-name-agnostic, so new
//! scenarios get plots for free when their payloads follow the repo's
//! `points`/`series` conventions.

#![warn(missing_docs)]

mod dashboard;
mod html;
mod svg;

pub use dashboard::{
    check_input, render_dashboard, InputReport, OutputFile, ReportError, ScenarioMeta,
};
