//! Inline-SVG plots: line/scatter charts for sweeps, horizontal bar
//! charts for suite-style rows.
//!
//! The SVG is styled entirely through CSS classes defined in the page
//! shell (`html::STYLE`), so one markup rendering serves both the light
//! and the dark scheme. Coordinates are formatted to a fixed precision
//! and every layout decision is a pure function of the data — two renders
//! of the same chart are byte-identical.

use crate::html::escape;
use std::fmt::Write as _;

/// One plotted series: a display label and `(x, y)` points.
pub(crate) struct Series {
    /// Legend / tooltip label.
    pub label: String,
    /// Data points; the chart sorts a copy by `x` before drawing.
    pub points: Vec<(f64, f64)>,
}

/// Format an axis/data value for humans: integers without decimals,
/// everything else with up to four decimals, trailing zeros trimmed.
pub(crate) fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "–".to_string();
    }
    if v == v.trunc() && v.abs() < 1e12 {
        return format!("{}", v as i64);
    }
    let mut s = format!("{v:.4}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// SVG coordinate rendering: two decimals, enough for a 560px canvas.
fn c(v: f64) -> String {
    format!("{v:.2}")
}

/// A "nice" tick step covering `range` in roughly `target` intervals:
/// 1, 2 or 5 times a power of ten.
fn nice_step(range: f64, target: usize) -> f64 {
    let raw = range / target.max(1) as f64;
    if raw <= 0.0 || !raw.is_finite() {
        return 1.0;
    }
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let mult = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    mult * mag
}

/// Tick positions spanning `[min, max]` on nice-step multiples, together
/// with the (padded) axis bounds. Degenerate ranges get a unit of air so
/// a flat series still renders; non-finite or astronomically wide ranges
/// (a span overflowing `f64`, a report carrying `1e308`) degrade to
/// bounds-only ticks instead of trying to enumerate step multiples.
fn ticks(min: f64, max: f64) -> (Vec<f64>, f64, f64) {
    let (min, max) = if min.is_finite() && max.is_finite() {
        (min, max)
    } else {
        (0.0, 1.0)
    };
    let (min, max) = if min == max {
        (min - 1.0, max + 1.0)
    } else {
        (min, max)
    };
    let step = nice_step(max - min, 4);
    let k0 = (min / step).floor();
    let k1 = (max / step).ceil();
    if !k0.is_finite() || !k1.is_finite() || k1 - k0 > 64.0 {
        return (vec![min, max], min, max);
    }
    let (k0, k1) = (k0 as i64, k1 as i64);
    let ticks: Vec<f64> = (k0..=k1).map(|k| k as f64 * step).collect();
    (ticks, k0 as f64 * step, k1 as f64 * step)
}

/// A line/scatter chart: fixed-order series colors, horizontal gridlines
/// only (recessive), circle markers with `<title>` tooltips when the
/// series is small enough to read individually.
pub(crate) struct LineChart {
    /// x-axis caption.
    pub x_label: String,
    /// y-axis caption.
    pub y_label: String,
    /// The series, in presentation (= color-slot) order.
    pub series: Vec<Series>,
}

impl LineChart {
    /// Render the chart, or `None` when there is nothing to plot.
    pub fn to_svg(&self) -> Option<String> {
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for s in &self.series {
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    any = true;
                    xmin = xmin.min(x);
                    xmax = xmax.max(x);
                    ymin = ymin.min(y);
                    ymax = ymax.max(y);
                }
            }
        }
        if !any {
            return None;
        }
        let (xticks, x0, x1) = ticks(xmin, xmax);
        let (yticks, y0, y1) = ticks(ymin, ymax);

        const W: f64 = 560.0;
        const H: f64 = 300.0;
        const ML: f64 = 64.0;
        const MR: f64 = 14.0;
        const MT: f64 = 14.0;
        const MB: f64 = 46.0;
        let pw = W - ML - MR;
        let ph = H - MT - MB;
        let px = |x: f64| ML + (x - x0) / (x1 - x0) * pw;
        let py = |y: f64| MT + ph - (y - y0) / (y1 - y0) * ph;

        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">"
        );
        // Horizontal grid + y tick labels.
        for &t in &yticks {
            let y = py(t);
            let _ = writeln!(
                out,
                "<line class=\"grid\" x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"/>",
                c(ML),
                c(y),
                c(W - MR),
                c(y)
            );
            let _ = writeln!(
                out,
                "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
                c(ML - 8.0),
                c(y + 3.5),
                escape(&fmt_num(t))
            );
        }
        // Baseline + x tick labels.
        let _ = writeln!(
            out,
            "<line class=\"axis\" x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"/>",
            c(ML),
            c(MT + ph),
            c(W - MR),
            c(MT + ph)
        );
        for &t in &xticks {
            let x = px(t);
            let _ = writeln!(
                out,
                "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
                c(x),
                c(MT + ph + 16.0),
                escape(&fmt_num(t))
            );
        }
        // Axis captions.
        let _ = writeln!(
            out,
            "<text class=\"axis-label\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            c(ML + pw / 2.0),
            c(H - 8.0),
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            "<text class=\"axis-label\" transform=\"rotate(-90 12 {mid})\" x=\"12\" \
             y=\"{mid}\" text-anchor=\"middle\">{}</text>",
            escape(&self.y_label),
            mid = c(MT + ph / 2.0)
        );
        // Series: polyline + markers, color slot = series index (fixed
        // order, never cycled past the 8 documented slots — callers cap
        // series counts).
        for (i, s) in self.series.iter().enumerate() {
            let slot = i % 8 + 1;
            let mut pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .copied()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .collect();
            pts.sort_by(|a, b| a.partial_cmp(b).expect("finite points"));
            if pts.len() > 1 {
                let path: Vec<String> = pts
                    .iter()
                    .map(|&(x, y)| format!("{},{}", c(px(x)), c(py(y))))
                    .collect();
                let _ = writeln!(
                    out,
                    "<polyline class=\"line s{slot}\" points=\"{}\"/>",
                    path.join(" ")
                );
            }
            if pts.len() <= 60 {
                for &(x, y) in &pts {
                    let _ = writeln!(
                        out,
                        "<circle class=\"dot s{slot}\" cx=\"{}\" cy=\"{}\" r=\"3\">\
                         <title>{}: ({}, {})</title></circle>",
                        c(px(x)),
                        c(py(y)),
                        escape(&s.label),
                        escape(&fmt_num(x)),
                        escape(&fmt_num(y))
                    );
                }
            }
        }
        out.push_str("</svg>\n");
        Some(out)
    }
}

/// A horizontal bar chart for suite-style rows: one category per row, a
/// single measure, bars anchored at zero with direct value labels (the
/// relief rule for low-contrast palette slots — plus every chart also
/// ships its data table).
pub(crate) struct BarChart {
    /// Measure caption (shown above the bars).
    pub value_label: String,
    /// `(category, value)` rows, in input order.
    pub bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Render the chart, or `None` when there are no rows.
    pub fn to_svg(&self) -> Option<String> {
        if self.bars.is_empty() {
            return None;
        }
        // Non-finite values draw as zero-length bars (labeled "–" by
        // fmt_num) and don't distort the scale.
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        let vmin = self.bars.iter().map(|b| finite(b.1)).fold(0.0f64, f64::min);
        let vmax = self.bars.iter().map(|b| finite(b.1)).fold(0.0f64, f64::max);
        let (ticks, v0, v1) = ticks(vmin, vmax);

        const W: f64 = 560.0;
        const ML: f64 = 170.0;
        const MR: f64 = 70.0;
        const MT: f64 = 24.0;
        const ROW: f64 = 26.0;
        const MB: f64 = 26.0;
        let n = self.bars.len() as f64;
        let h = MT + n * ROW + MB;
        let pw = W - ML - MR;
        let px = |v: f64| ML + (v - v0) / (v1 - v0) * pw;

        let mut out = String::with_capacity(2048);
        let _ = writeln!(
            out,
            "<svg viewBox=\"0 0 {W} {h}\" width=\"{W}\" height=\"{h}\" role=\"img\">"
        );
        let _ = writeln!(
            out,
            "<text class=\"axis-label\" x=\"{}\" y=\"14\">{}</text>",
            c(ML),
            escape(&self.value_label)
        );
        // Vertical gridlines at value ticks.
        for &t in &ticks {
            let x = px(t);
            let _ = writeln!(
                out,
                "<line class=\"grid\" x1=\"{x}\" y1=\"{}\" x2=\"{x}\" y2=\"{}\"/>",
                c(MT),
                c(MT + n * ROW),
                x = c(x)
            );
            let _ = writeln!(
                out,
                "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
                c(x),
                c(MT + n * ROW + 16.0),
                escape(&fmt_num(t))
            );
        }
        // Zero baseline.
        let _ = writeln!(
            out,
            "<line class=\"axis\" x1=\"{x}\" y1=\"{}\" x2=\"{x}\" y2=\"{}\"/>",
            c(MT),
            c(MT + n * ROW),
            x = c(px(0.0))
        );
        for (i, (cat, v)) in self.bars.iter().enumerate() {
            let y = MT + i as f64 * ROW;
            let drawn = finite(*v);
            let (x_lo, x_hi) = if drawn < 0.0 {
                (px(drawn), px(0.0))
            } else {
                (px(0.0), px(drawn))
            };
            let _ = writeln!(
                out,
                "<text class=\"cat\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
                c(ML - 10.0),
                c(y + ROW / 2.0 + 4.0),
                escape(cat)
            );
            let _ = writeln!(
                out,
                "<rect class=\"bar\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"14\" rx=\"2\">\
                 <title>{}: {}</title></rect>",
                c(x_lo),
                c(y + (ROW - 14.0) / 2.0),
                c((x_hi - x_lo).max(0.5)),
                escape(cat),
                escape(&fmt_num(*v))
            );
            let _ = writeln!(
                out,
                "<text class=\"val\" x=\"{}\" y=\"{}\">{}</text>",
                c(x_hi + 6.0),
                c(y + ROW / 2.0 + 4.0),
                escape(&fmt_num(*v))
            );
        }
        out.push_str("</svg>\n");
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting_is_compact() {
        assert_eq!(fmt_num(500.0), "500");
        assert_eq!(fmt_num(-3.0), "-3");
        assert_eq!(fmt_num(0.75), "0.75");
        assert_eq!(fmt_num(1.0 / 3.0), "0.3333");
        assert_eq!(fmt_num(f64::NAN), "–");
    }

    #[test]
    fn nice_ticks_cover_the_range() {
        let (marks, lo, hi) = ticks(0.3, 9.4);
        assert!(lo <= 0.3 && hi >= 9.4);
        assert!(marks.len() >= 3 && marks.len() <= 9, "{marks:?}");
        // Degenerate range still produces a drawable axis.
        let (_, lo, hi) = ticks(5.0, 5.0);
        assert!(lo < 5.0 && hi > 5.0);
    }

    #[test]
    fn line_chart_renders_series_and_tooltips() {
        let chart = LineChart {
            x_label: "rounds".into(),
            y_label: "accuracy".into(),
            series: vec![
                Series {
                    label: "5us".into(),
                    points: vec![(500.0, 0.6), (8000.0, 1.0)],
                },
                Series {
                    label: "1ms".into(),
                    points: vec![(8000.0, 0.5), (500.0, 0.5)],
                },
            ],
        };
        let svg = chart.to_svg().unwrap();
        assert!(svg.contains("polyline class=\"line s1\""));
        assert!(svg.contains("polyline class=\"line s2\""));
        assert!(svg.contains("<title>5us: (500, 0.6)</title>"));
        assert!(svg.contains(">accuracy</text>"));
        assert_eq!(svg, chart.to_svg().unwrap(), "rendering is deterministic");
    }

    #[test]
    fn line_chart_with_no_finite_points_is_none() {
        let chart = LineChart {
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "nan".into(),
                points: vec![(f64::NAN, 1.0)],
            }],
        };
        assert!(chart.to_svg().is_none());
    }

    #[test]
    fn pathological_magnitudes_do_not_panic() {
        // An integer literal beyond f64 range parses to +inf; charts must
        // degrade, not abort enumerating step multiples.
        let (marks, lo, hi) = ticks(0.0, f64::INFINITY);
        assert!(!marks.is_empty() && lo.is_finite() && hi.is_finite());
        let (marks, lo, hi) = ticks(-1e308, 1e308);
        assert_eq!(marks.len(), 2, "overflowing span draws bounds only");
        assert!(lo.is_finite() && hi.is_finite());
        let svg = BarChart {
            value_label: "v".into(),
            bars: vec![("huge".into(), f64::INFINITY), ("ok".into(), 2.0)],
        }
        .to_svg()
        .unwrap();
        assert!(svg.contains("<title>huge: –</title>"));
        assert!(svg.contains("<title>ok: 2</title>"));
    }

    #[test]
    fn bar_chart_anchors_at_zero_and_labels_values() {
        let chart = BarChart {
            value_label: "speedup".into(),
            bars: vec![("alu-chain".into(), 25.0), ("neg".into(), -2.0)],
        };
        let svg = chart.to_svg().unwrap();
        assert!(svg.contains("rect class=\"bar\""));
        assert!(svg.contains("<title>alu-chain: 25</title>"));
        assert!(svg.contains(">-2</text>"));
        assert!(BarChart {
            value_label: "x".into(),
            bars: vec![],
        }
        .to_svg()
        .is_none());
    }
}
