//! Golden snapshots for the dashboard renderer.
//!
//! The fixture reports under `tests/fixtures/` are handwritten
//! `racer-lab/v1` documents with pinned provenance (`git: "fixture0"`),
//! covering every rendering shape: a grouped sweep with quick *and*
//! paper presets (delta table + merge lineage), a nested point-series
//! figure, suite-style workload rows, and a boolean matrix. The rendered
//! pages are committed under `tests/golden/` and must match byte for
//! byte — the determinism the CI artifact and downstream diffing rely
//! on. After an intended rendering change, regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p racer-report`.

use racer_report::{render_dashboard, InputReport, OutputFile, ScenarioMeta};
use racer_results::Value;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Load every fixture report, sorted by file name (what the CLI does for
/// a directory input).
fn fixtures() -> Vec<InputReport> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "expected the full fixture set");
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("fixture readable");
            InputReport {
                // Stable label: the file name, not the absolute path, so
                // the snapshot is machine-independent.
                label: format!(
                    "fixtures/{}",
                    p.file_name().expect("file name").to_string_lossy()
                ),
                doc: Value::parse(&text).expect("fixture parses"),
            }
        })
        .collect()
}

/// Registry-like metadata: orders the figure before the evals, supplies
/// titles (countermeasures_eval deliberately omitted to exercise the
/// report-embedded fallback).
fn meta() -> Vec<ScenarioMeta> {
    let m = |name: &str, title: &str, description: &str, order: usize| ScenarioMeta {
        name: name.to_string(),
        title: title.to_string(),
        description: description.to_string(),
        order,
    };
    vec![
        m(
            "fig08_granularity_add",
            "Figure 8",
            "racing-gadget granularity: targets vs an ADD reference path",
            0,
        ),
        m(
            "timer_mitigations_eval",
            "timer mitigations",
            "PLRU channel accuracy across browser timer mitigations × rounds",
            1,
        ),
        m(
            "perf_baseline",
            "perf",
            "event-driven vs reference scheduler throughput",
            2,
        ),
    ]
}

fn render() -> Vec<OutputFile> {
    render_dashboard(&fixtures(), &meta()).expect("fixtures render")
}

#[test]
fn dashboard_matches_committed_golden_pages() {
    let files = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // Clear stale pages so renames don't leave orphans behind.
        std::fs::remove_dir_all(golden_dir()).ok();
        for f in &files {
            let path = golden_dir().join(&f.path);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(&path, &f.content).expect("write golden");
        }
        return;
    }
    // Exactly the committed page set, byte for byte.
    for f in &files {
        let path = golden_dir().join(&f.path);
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden page {} ({e}); regenerate with \
                 UPDATE_GOLDEN=1 cargo test -p racer-report",
                f.path
            )
        });
        assert_eq!(
            f.content, expected,
            "{} drifted from tests/golden/{} — if intended, regenerate with \
             UPDATE_GOLDEN=1 cargo test -p racer-report",
            f.path, f.path
        );
    }
    let mut committed = Vec::new();
    for entry in walk(&golden_dir()) {
        committed.push(
            entry
                .strip_prefix(golden_dir())
                .expect("under golden dir")
                .to_string_lossy()
                .replace('\\', "/"),
        );
    }
    committed.sort();
    let mut rendered: Vec<String> = files.iter().map(|f| f.path.clone()).collect();
    rendered.sort();
    assert_eq!(
        rendered, committed,
        "the rendered page set and the committed golden set must agree"
    );
}

fn walk(dir: &PathBuf) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}

#[test]
fn two_renders_are_byte_identical() {
    let a = render();
    let b = render();
    assert_eq!(a.len(), b.len());
    for (fa, fb) in a.iter().zip(&b) {
        assert_eq!(fa.path, fb.path);
        assert_eq!(fa.content, fb.content, "{} not deterministic", fa.path);
    }
}

#[test]
fn every_fixture_scenario_gets_plots_and_provenance() {
    let files = render();
    let page = |path: &str| -> &str {
        &files
            .iter()
            .find(|f| f.path == path)
            .unwrap_or_else(|| panic!("missing page {path}"))
            .content
    };
    // Index: one row per scenario, provenance inline.
    let index = page("index.html");
    for needle in [
        "fig08_granularity_add",
        "timer_mitigations_eval",
        "perf_baseline",
        "countermeasures_eval",
        "fixture0",
        "merged 1/2+2/2",
    ] {
        assert!(index.contains(needle), "index.html lacks {needle:?}");
    }
    // Sweep page: grouped line chart, merge lineage, delta table.
    let sweep = page("scenarios/timer_mitigations_eval.html");
    assert!(sweep.contains("<svg"));
    assert!(sweep.contains("accuracy vs rounds by <code>timer</code>"));
    assert!(sweep.contains("quick vs paper"));
    assert!(sweep.contains("shard1/timer_mitigations_eval.json"));
    // Figure page: nested series chart + per-series suite bars.
    let fig = page("scenarios/fig08_granularity_add.html");
    assert!(fig.contains("ref_ops vs target_ops"));
    assert!(fig.contains("slope by <code>target_op</code>"));
    // Suite page: bar chart per measure.
    let perf = page("scenarios/perf_baseline.html");
    assert!(perf.contains("speedup by <code>workload</code>"));
    // Matrix page: a table, no chart (nothing numeric).
    let matrix = page("scenarios/countermeasures_eval.html");
    assert!(!matrix.contains("<svg"));
    assert!(matrix.contains("<td>delay-on-miss</td>"));
    // Every page carries the pinned git describe.
    for f in &files {
        assert!(f.content.contains("fixture0"), "{} lost provenance", f.path);
    }
}
