//! Dependency-free JSON for experiment results.
//!
//! The workspace builds offline and the vendored `serde` is a no-op stub
//! (its derives expand to nothing), so structured output needs its own
//! machinery. This crate is that machinery: an order-preserving [`Value`]
//! model, a deterministic writer, and a small strict parser — enough to
//! emit every `racer-lab` scenario report and to read committed baselines
//! like `BENCH_pipeline.json` back for regression gating.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Two runs of the same experiment must serialize to
//!    byte-identical text so CI can diff results and golden tests can
//!    assert snapshots. Objects keep insertion order (no HashMap), floats
//!    format via Rust's shortest-roundtrip `Display`, and the writer has
//!    exactly one rendering per value.
//! 2. **Correctness over features.** Full RFC 8259 string escaping and
//!    strict parsing, but no streaming, no zero-copy, no serde bridge.
//! 3. **Ergonomics for builders.** `From` impls for the primitive types
//!    experiments actually produce, plus [`Value::object`]/[`Value::with`]
//!    for literal-ish construction.
//!
//! Consumers that need to *interpret* report payloads (the `racer-report`
//! dashboard) get [`Table`]: a zero-copy rectangular view over an array
//! of JSON objects with per-column type classification ([`ColumnKind`]).
//!
//! ```
//! use racer_results::Value;
//!
//! let report = Value::object()
//!     .with("scenario", "fig08_granularity_add")
//!     .with("points", vec![1i64, 2, 3])
//!     .with("slope", 1.04);
//! let text = report.to_pretty();
//! assert_eq!(Value::parse(&text).unwrap(), report);
//! ```

#![warn(missing_docs)]

mod parse;
mod table;
mod value;
mod write;

pub use parse::ParseError;
pub use table::{Column, ColumnKind, Table};
pub use value::Value;
