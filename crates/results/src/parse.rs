//! A small strict JSON parser.
//!
//! Reads committed result baselines (`BENCH_pipeline.json`,
//! `results/*.json`) back into [`Value`] for regression gating and for the
//! golden tests to validate emitted output. Strict RFC 8259: no comments,
//! no trailing commas, one top-level value.

use crate::Value;
use std::fmt;

/// Parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parse one JSON document; trailing whitespace is allowed, trailing
    /// content is an error.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after JSON value"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy the whole run up to the next escape, quote or
                    // control byte in one shot. The input is `&str`, so
                    // slicing at these ASCII boundaries is UTF-8 safe.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is &str and run boundaries are ASCII");
                    out.push_str(run);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let unit = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by \uXXXX low.
        if (0xD800..=0xDBFF).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let c = 0x10000 + ((unit as u32 - 0xD800) << 10) + (low as u32 - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..=0xDFFF).contains(&unit) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(unit as u32).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if !f.is_finite() {
                return Err(self.err("number out of range"));
            }
            Ok(Value::Float(f))
        } else {
            // Integer syntax; overflow degrades to float like most readers.
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => {
                    let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Float(f))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("-17").unwrap(), Value::Int(-17));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse(r#""hi""#).unwrap(), Value::from("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0], Value::Int(1));
        assert_eq!(a[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes_and_surrogates() {
        assert_eq!(
            Value::parse(r#""a\n\t\"\\\u00e9\ud83d\ude00""#).unwrap(),
            Value::from("a\n\t\"\\\u{e9}\u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "nullx",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn long_plain_strings_roundtrip() {
        // The fast path copies unescaped runs in one shot; make sure a
        // large string with interleaved escapes and multi-byte chars
        // survives intact.
        let body = "abcdefgh\u{e9}\u{1F600}".repeat(4096);
        let s = format!("{body}\"quoted\"\n{body}");
        let v = Value::from(s.clone());
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn roundtrips_writer_output() {
        let v = Value::object()
            .with("name", "x\"y\\z\n")
            .with("nums", vec![Value::Int(3), Value::Float(0.25), Value::Null])
            .with("nested", Value::object().with("ok", true));
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn reads_the_committed_baseline_shape() {
        let text = r#"{
  "bench": "pipeline-scheduler-throughput",
  "workloads": [
    {"workload": "alu-chain", "event_driven_instrs_per_sec": 10309745, "speedup": 15.23}
  ]
}"#;
        let v = Value::parse(text).unwrap();
        let w = &v.get("workloads").and_then(Value::as_array).unwrap()[0];
        assert_eq!(
            w.get("event_driven_instrs_per_sec").and_then(Value::as_f64),
            Some(10309745.0)
        );
    }
}
