//! Shape introspection for point series.
//!
//! Every `racer-lab` scenario serializes its sweep data as an array of
//! JSON objects — `results.points`, `results.series[i].points`,
//! `results.mixes`, `results.workloads` and so on. Consumers that want to
//! *plot* those arrays (the `racer-report` dashboard) need a rectangular
//! view: which columns exist, what type each one is, and the values as
//! typed vectors. [`Table`] is that view, built without copying a single
//! [`Value`].
//!
//! ```
//! use racer_results::{Table, ColumnKind, Value};
//!
//! let points = Value::Array(vec![
//!     Value::object().with("rounds", 500).with("accuracy", 0.75),
//!     Value::object().with("rounds", 8000).with("accuracy", 1.0),
//! ]);
//! let table = Table::from_value(&points).expect("array of objects");
//! assert_eq!(table.len(), 2);
//! let rounds = table.column("rounds").unwrap();
//! assert_eq!(rounds.kind(), ColumnKind::Numeric);
//! assert_eq!(rounds.numeric().unwrap(), [500.0, 8000.0]);
//! ```

use crate::Value;

/// What a [`Column`]'s values have in common.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnKind {
    /// Every present value is an integer or a float.
    Numeric,
    /// Every present value is a string.
    Text,
    /// Every present value is a boolean.
    Bool,
    /// Every present value is itself an array of objects (a nested point
    /// series, e.g. `series[i].points`).
    Rows,
    /// Anything else: nulls, mixed types, arrays of scalars, objects.
    Mixed,
}

/// One named column of a [`Table`]: the member's value in each row, in
/// row order, `None` where a row lacks the member.
pub struct Column<'a> {
    name: &'a str,
    values: Vec<Option<&'a Value>>,
    kind: ColumnKind,
}

impl<'a> Column<'a> {
    /// The member name this column was built from.
    pub fn name(&self) -> &'a str {
        self.name
    }

    /// The common type of the present values (see [`ColumnKind`]).
    pub fn kind(&self) -> ColumnKind {
        self.kind
    }

    /// The value in row `row`, if that row has the member.
    pub fn get(&self, row: usize) -> Option<&'a Value> {
        self.values.get(row).copied().flatten()
    }

    /// Whether every row has this member.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(Option::is_some)
    }

    /// All values as `f64` — `Some` only for a complete numeric column.
    pub fn numeric(&self) -> Option<Vec<f64>> {
        if self.kind != ColumnKind::Numeric || !self.is_complete() {
            return None;
        }
        self.values
            .iter()
            .map(|v| v.and_then(Value::as_f64))
            .collect()
    }

    /// All values as `&str` — `Some` only for a complete text column.
    pub fn text(&self) -> Option<Vec<&'a str>> {
        if self.kind != ColumnKind::Text || !self.is_complete() {
            return None;
        }
        self.values
            .iter()
            .map(|v| v.and_then(Value::as_str))
            .collect()
    }
}

/// A rectangular view over an array of JSON objects: one [`Column`] per
/// member name (first-seen order), one slot per row.
pub struct Table<'a> {
    columns: Vec<Column<'a>>,
    rows: usize,
}

impl<'a> Table<'a> {
    /// Build the view from rows that must all be objects (else `None`).
    pub fn from_rows(rows: &'a [Value]) -> Option<Table<'a>> {
        let mut columns: Vec<Column<'a>> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let members = row.members()?;
            for (name, value) in members {
                let col = match columns.iter_mut().find(|c| c.name == name) {
                    Some(col) => col,
                    None => {
                        columns.push(Column {
                            name,
                            values: vec![None; rows.len()],
                            kind: ColumnKind::Mixed,
                        });
                        columns.last_mut().expect("just pushed")
                    }
                };
                col.values[i] = Some(value);
            }
        }
        for col in &mut columns {
            col.kind = kind_of(col.values.iter().flatten().copied());
        }
        Some(Table {
            columns,
            rows: rows.len(),
        })
    }

    /// [`Table::from_rows`] on an array value; `None` for non-arrays.
    pub fn from_value(v: &'a Value) -> Option<Table<'a>> {
        Table::from_rows(v.as_array()?)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns, in first-seen member order.
    pub fn columns(&self) -> &[Column<'a>] {
        &self.columns
    }

    /// Look one column up by member name.
    pub fn column(&self, name: &str) -> Option<&Column<'a>> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// The [`ColumnKind`] shared by `values` (an empty iterator is `Mixed`:
/// a column with no present values supports no typed access).
fn kind_of<'a>(values: impl Iterator<Item = &'a Value>) -> ColumnKind {
    let of_one = |v: &Value| match v {
        Value::Int(_) | Value::Float(_) => ColumnKind::Numeric,
        Value::Str(_) => ColumnKind::Text,
        Value::Bool(_) => ColumnKind::Bool,
        Value::Array(items) if !items.is_empty() => {
            if items.iter().all(|i| matches!(i, Value::Object(_))) {
                ColumnKind::Rows
            } else {
                ColumnKind::Mixed
            }
        }
        _ => ColumnKind::Mixed,
    };
    let mut kinds = values.map(of_one);
    let Some(first) = kinds.next() else {
        return ColumnKind::Mixed;
    };
    if kinds.all(|k| k == first) {
        first
    } else {
        ColumnKind::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Value> {
        vec![
            Value::object()
                .with("timer", "5us")
                .with("rounds", 500)
                .with("accuracy", 0.75)
                .with("flagged", true),
            Value::object()
                .with("timer", "1ms")
                .with("rounds", 8000)
                .with("accuracy", 1.0)
                .with("flagged", false),
        ]
    }

    #[test]
    fn columns_follow_first_seen_order_and_kinds() {
        let rows = rows();
        let t = Table::from_rows(&rows).unwrap();
        assert_eq!(t.len(), 2);
        let names: Vec<&str> = t.columns().iter().map(Column::name).collect();
        assert_eq!(names, ["timer", "rounds", "accuracy", "flagged"]);
        assert_eq!(t.column("timer").unwrap().kind(), ColumnKind::Text);
        assert_eq!(t.column("rounds").unwrap().kind(), ColumnKind::Numeric);
        assert_eq!(t.column("accuracy").unwrap().kind(), ColumnKind::Numeric);
        assert_eq!(t.column("flagged").unwrap().kind(), ColumnKind::Bool);
        assert_eq!(
            t.column("accuracy").unwrap().numeric().unwrap(),
            [0.75, 1.0]
        );
        assert_eq!(t.column("timer").unwrap().text().unwrap(), ["5us", "1ms"]);
        assert!(t.column("rounds").unwrap().text().is_none());
    }

    #[test]
    fn missing_members_leave_holes_and_block_typed_access() {
        let rows = vec![
            Value::object().with("x", 1).with("note", "only here"),
            Value::object().with("x", 2),
        ];
        let t = Table::from_rows(&rows).unwrap();
        let note = t.column("note").unwrap();
        assert!(!note.is_complete());
        assert_eq!(note.kind(), ColumnKind::Text);
        assert!(note.text().is_none(), "incomplete columns have no vector");
        assert_eq!(note.get(0).and_then(Value::as_str), Some("only here"));
        assert_eq!(note.get(1), None);
        assert_eq!(t.column("x").unwrap().numeric().unwrap(), [1.0, 2.0]);
    }

    #[test]
    fn nested_point_series_classify_as_rows() {
        let rows = vec![Value::object().with("label", "add").with(
            "points",
            Value::Array(vec![Value::object().with("x", 1).with("y", 2)]),
        )];
        let t = Table::from_rows(&rows).unwrap();
        assert_eq!(t.column("points").unwrap().kind(), ColumnKind::Rows);
        let nested = t.column("points").unwrap().get(0).unwrap();
        let nt = Table::from_value(nested).unwrap();
        assert_eq!(nt.column("x").unwrap().numeric().unwrap(), [1.0]);
    }

    #[test]
    fn mixed_and_non_object_rows() {
        let rows = vec![
            Value::object().with("v", 1).with("s", Value::Null),
            Value::object().with("v", "two"),
        ];
        let t = Table::from_rows(&rows).unwrap();
        assert_eq!(t.column("v").unwrap().kind(), ColumnKind::Mixed);
        assert_eq!(t.column("s").unwrap().kind(), ColumnKind::Mixed);

        let not_objects = vec![Value::Int(1)];
        assert!(Table::from_rows(&not_objects).is_none());
        assert!(Table::from_value(&Value::Int(3)).is_none());
        let empty: Vec<Value> = Vec::new();
        assert!(Table::from_rows(&empty).unwrap().is_empty());
    }

    #[test]
    fn scalar_arrays_are_not_rows() {
        let rows = vec![Value::object().with("xs", vec![1i64, 2, 3])];
        let t = Table::from_rows(&rows).unwrap();
        assert_eq!(t.column("xs").unwrap().kind(), ColumnKind::Mixed);
    }
}
