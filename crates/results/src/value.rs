//! The JSON value model.

/// A JSON value with deterministic rendering.
///
/// Objects are backed by an insertion-ordered `Vec` rather than a map:
/// experiment reports are built once, never mutated key-wise, and must
/// serialize identically on every run.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (covers every counter the simulator produces; `u64`
    /// values above `i64::MAX` do not occur in practice and are rejected
    /// at conversion time rather than silently wrapped).
    Int(i64),
    /// Finite double. Non-finite floats become `null` when written.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Empty object, ready for [`Value::with`] chaining.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Append `key: value` and return the object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-object or with a duplicate key — both
    /// are construction bugs, not runtime conditions.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        self.insert(key, value);
        self
    }

    /// Append `key: value` in place (non-consuming [`Value::with`]).
    pub fn insert(&mut self, key: &str, value: impl Into<Value>) {
        let Value::Object(fields) = self else {
            panic!("Value::insert on non-object");
        };
        assert!(
            fields.iter().all(|(k, _)| k != key),
            "duplicate JSON key {key:?}"
        );
        fields.push((key.to_string(), value.into()));
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object members in insertion order; `None` for non-objects.
    pub fn members(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Array elements; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String content; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content as `f64` (integers widen); `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer content; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean content; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(i64::try_from(v).expect("u64 result exceeds i64::MAX"))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(i64::try_from(v).expect("usize result exceeds i64::MAX"))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_insertion_order() {
        let v = Value::object()
            .with("z", 1i64)
            .with("a", 2i64)
            .with("m", 3i64);
        let Value::Object(fields) = &v else { panic!() };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.get("a"), Some(&Value::Int(2)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate JSON key")]
    fn duplicate_keys_rejected() {
        let _ = Value::object().with("k", 1i64).with("k", 2i64);
    }

    #[test]
    fn option_and_vec_conversions() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(4usize)), Value::Int(4));
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
