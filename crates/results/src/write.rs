//! Deterministic JSON rendering.

use crate::Value;
use std::fmt::Write as _;

impl Value {
    /// Compact one-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty rendering: two-space indent, `\n` line ends, trailing
    /// newline — the on-disk format of `results/<scenario>.json`.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
            write_value(out, &items[i], indent, d);
        }),
        Value::Object(fields) => {
            write_seq(out, fields.len(), indent, depth, '{', '}', |out, i, d| {
                let (k, v) = &fields[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            })
        }
    }
}

/// Shared array/object layout: `open`, items via `item(out, index, depth)`,
/// `close`, with commas and (in pretty mode) per-item newlines + indent.
fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    item: impl Fn(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * step {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Floats use Rust's shortest-roundtrip `Display`, which is deterministic
/// and re-parses to the same bits. JSON has no non-finite literals, so
/// NaN/±Inf degrade to `null` (experiments that care assert finiteness
/// before building the report). Whole floats gain a `.0` so the value
/// round-trips as a float, not an integer.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{f}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// RFC 8259 §7 string escaping: the two mandatory escapes (`"`, `\`),
/// short forms for the common control characters, `\u00XX` for the rest
/// of C0. Everything above U+001F passes through as UTF-8.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_every_mandatory_class() {
        let v = Value::from("q\" b\\ n\n r\r t\t bell\u{0007} unit\u{001f} ok\u{00e9}");
        assert_eq!(
            v.to_compact(),
            "\"q\\\" b\\\\ n\\n r\\r t\\t bell\\u0007 unit\\u001f ok\u{00e9}\""
        );
    }

    #[test]
    fn short_escapes_for_common_controls() {
        assert_eq!(Value::from("\u{8}\u{c}").to_compact(), r#""\b\f""#);
    }

    #[test]
    fn integer_formatting() {
        assert_eq!(Value::Int(0).to_compact(), "0");
        assert_eq!(Value::Int(-42).to_compact(), "-42");
        assert_eq!(Value::Int(i64::MAX).to_compact(), "9223372036854775807");
        assert_eq!(Value::Int(i64::MIN).to_compact(), "-9223372036854775808");
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        assert_eq!(Value::Float(1.0).to_compact(), "1.0");
        assert_eq!(Value::Float(-0.5).to_compact(), "-0.5");
        assert_eq!(Value::Float(0.1).to_compact(), "0.1");
        assert_eq!(
            Value::Float(std::f64::consts::PI).to_compact(),
            "3.141592653589793"
        );
        assert_eq!(
            Value::Float(1e300).to_compact().parse::<f64>().unwrap(),
            1e300
        );
        // Shortest form that still round-trips exactly.
        let f = 0.1 + 0.2;
        let text = Value::Float(f).to_compact();
        assert_eq!(text.parse::<f64>().unwrap(), f);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_compact(), "null");
        assert_eq!(Value::Float(f64::NEG_INFINITY).to_compact(), "null");
    }

    #[test]
    fn compact_layout() {
        let v = Value::object()
            .with("a", 1i64)
            .with("b", vec![true, false])
            .with("c", Value::object());
        assert_eq!(v.to_compact(), r#"{"a":1,"b":[true,false],"c":{}}"#);
    }

    #[test]
    fn pretty_layout() {
        let v = Value::object()
            .with("xs", vec![1i64, 2])
            .with("empty", Value::Array(vec![]));
        assert_eq!(
            v.to_pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}\n"
        );
    }

    #[test]
    fn pretty_rendering_is_stable_across_calls() {
        let v = Value::object()
            .with("k", 0.30000000000000004)
            .with("s", "x\ny");
        assert_eq!(v.to_pretty(), v.to_pretty());
    }
}
