//! Fuzz-style property tests for the strict JSON parser.
//!
//! The fault-tolerant pipeline leans on one invariant: feeding the parser
//! *anything* — kill-orphaned temp files, truncated downloads, random
//! bytes — yields a typed `ParseError`, never a panic and never a bogus
//! `Ok`. These properties drive the parser with arbitrary byte strings,
//! truncations of a valid report, and single-byte mutations of a valid
//! report, and assert totality plus strictness.

use proptest::prelude::*;
use racer_results::Value;

/// A representative `racer-lab/v1`-shaped document exercising every value
/// kind the pipeline writes: nested objects, row tables, strings with
/// escapes, ints, floats, bools and null.
fn valid_report() -> Value {
    Value::object()
        .with("schema", "racer-lab/v1")
        .with("scenario", "fuzz_eval")
        .with("title", "§fuzz \"quoted\" \\ back")
        .with("scale", "quick")
        .with("seed", -12345)
        .with("deterministic", true)
        .with(
            "config",
            Value::object()
                .with("trials", 3)
                .with("threshold", 0.625)
                .with("note", Value::Null),
        )
        .with(
            "results",
            Value::object().with(
                "points",
                Value::Array(vec![
                    Value::object().with("x", 1).with("y", 0.5),
                    Value::object().with("x", 2).with("y", 1.0e-3),
                ]),
            ),
        )
}

proptest! {
    /// The parser is total over arbitrary byte strings: whatever the
    /// input (lossily decoded, like a real corrupt file read), it returns
    /// `Ok` or a positioned `ParseError` — it never panics, and it is
    /// deterministic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let first = Value::parse(&text);
        let second = Value::parse(&text);
        match (&first, &second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.to_compact(), b.to_compact()),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "parse must be deterministic"),
        }
        if let Err(e) = first {
            prop_assert!(e.offset <= text.len(), "error offset stays in bounds");
        }
    }

    /// Every strict prefix of a valid pretty-printed report fails to
    /// parse (the final byte is `\n`, so a cut anywhere before the last
    /// two bytes removes structure, not just trailing whitespace) — and
    /// never panics. A truncated write can therefore never be mistaken
    /// for a complete report.
    #[test]
    fn truncations_of_a_valid_report_are_rejected(cut_seed in any::<u64>()) {
        let text = valid_report().to_pretty();
        let cut = (cut_seed as usize) % text.len();
        let mut end = cut;
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        let prefix = &text[..end];
        let parsed = Value::parse(prefix);
        if end < text.len() - 1 {
            prop_assert!(
                parsed.is_err(),
                "prefix of {end}/{} bytes must not parse",
                text.len()
            );
        }
    }

    /// Flipping one byte of a valid report never panics the parser, and
    /// whenever the mutation still parses (e.g. a digit swapped inside a
    /// number or a letter inside a string), the result round-trips
    /// cleanly — the parser never returns a value it cannot re-serialize.
    #[test]
    fn single_byte_mutations_never_panic(pos_seed in any::<u64>(), byte in any::<u8>()) {
        let mut bytes = valid_report().to_pretty().into_bytes();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] = byte;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(v) = Value::parse(&text) {
            let reparsed = Value::parse(&v.to_pretty());
            prop_assert!(reparsed.is_ok(), "accepted values must round-trip");
            prop_assert_eq!(reparsed.unwrap().to_compact(), v.to_compact());
        }
    }

    /// Valid documents round-trip byte-for-byte through pretty printing:
    /// parse(to_pretty(v)) == v for randomized report-shaped values.
    #[test]
    fn randomized_reports_round_trip(
        seed in any::<i64>(),
        acc in any::<f64>(),
        n in 0usize..20,
        flag in any::<bool>(),
    ) {
        let rows: Vec<Value> = (0..n)
            .map(|i| {
                Value::object()
                    .with("idx", i as i64)
                    .with("measure", acc + i as f64)
            })
            .collect();
        let doc = valid_report()
            .with("extra_seed", seed)
            .with("extra_flag", flag)
            .with("rows", Value::Array(rows));
        let pretty = doc.to_pretty();
        let parsed = Value::parse(&pretty);
        prop_assert!(parsed.is_ok(), "emitted documents always parse");
        prop_assert_eq!(parsed.unwrap().to_pretty(), pretty);
    }
}
