//! # racer-time — browser timer models and side-channel statistics
//!
//! The paper's threat model (§3) gives the attacker *"any valid JavaScript
//! code"* but only timers of **5 µs or coarser** — the post-Spectre
//! `performance.now()` landscape surveyed in §2.2. Whether an attack
//! succeeds is a question about what survives quantization, jitter and
//! fuzzing; this crate provides those observation models plus the statistics
//! used to score the channels they carry.
//!
//! * [`timer`] — [`Timer`] implementations: [`CoarseTimer`] (quantization +
//!   optional jitter, i.e. `performance.now()`), [`FuzzyTimer`] (randomly
//!   perturbed clock edges, the fuzzy-time countermeasure), [`SabCounterTimer`]
//!   (the removed SharedArrayBuffer counting-thread timer, as the fine-grained
//!   baseline) and [`PerfectTimer`].
//! * [`stats`] — histograms, distribution overlap, threshold classifiers and
//!   leak-rate computation for scoring transmissions (Figures 7 and 10, and
//!   the §7.3 bit-rate/accuracy numbers).
//!
//! ## Quickstart
//!
//! ```
//! use racer_time::{CoarseTimer, Timer};
//!
//! // A 5 µs browser timer cannot see a 100 ns difference directly…
//! let mut t = CoarseTimer::new(5_000.0);
//! assert_eq!(t.now(0.0), t.now(100.0));
//! // …but it can see a magnified 100 µs difference.
//! assert!(t.now(100_000.0) > t.now(0.0));
//! ```

pub mod stats;
pub mod timer;

pub use stats::{best_threshold, overlap_coefficient, Histogram, Summary};
pub use timer::{CoarseTimer, FuzzyTimer, PerfectTimer, SabCounterTimer, Timer};
