//! Statistics for scoring timing channels.
//!
//! Used to regenerate Figure 10's transmit-0/transmit-1 distributions, the
//! §7.3 accuracy and leak-rate numbers, and the stage breakdowns of Figure 7.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Basic summary statistics over a sample.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Summarize `samples` (empty input produces an all-zero summary).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} sd={:.1} min={:.1} max={:.1}",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// A fixed-bin-width histogram over `f64` samples.
///
/// ```
/// use racer_time::Histogram;
/// let h = Histogram::from_samples(&[1.0, 1.5, 9.0], 0.0, 2.0, 5);
/// assert_eq!(h.count(0), 2);
/// assert_eq!(h.count(4), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    lo: i64,
    width_milli: i64,
}

impl Histogram {
    /// Bin `samples` into `bins` buckets of `width` starting at `lo`.
    /// Out-of-range samples clamp into the first/last bin.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `width` is not strictly positive.
    pub fn from_samples(samples: &[f64], lo: f64, width: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(width > 0.0, "bin width must be positive");
        let mut counts = vec![0u64; bins];
        for &s in samples {
            let idx = ((s - lo) / width).floor();
            let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
            counts[idx] += 1;
        }
        Histogram {
            counts,
            lo: (lo * 1000.0) as i64,
            width_milli: (width * 1000.0) as i64,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalized probability per bin.
    pub fn probabilities(&self) -> Vec<f64> {
        let t = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        (self.lo + self.width_milli * i as i64) as f64 / 1000.0
    }

    /// An ASCII rendering, one row per non-empty bin.
    pub fn render(&self, max_width: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as usize * max_width) / peak as usize).max(1));
            let _ = writeln!(s, "{:>12.1} | {bar} {c}", self.bin_lo(i));
        }
        s
    }
}

/// Overlap coefficient between two sample sets, computed over a shared
/// histogram domain: `sum_i min(p_i, q_i)` ∈ [0, 1]. Zero means perfectly
/// separable distributions (Figure 10: "almost no overlap between the two
/// transmissions").
pub fn overlap_coefficient(a: &[f64], b: &[f64], bins: usize) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let lo = a.iter().chain(b).copied().fold(f64::INFINITY, f64::min);
    let hi = a.iter().chain(b).copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(f64::EPSILON);
    let ha = Histogram::from_samples(a, lo, width, bins);
    let hb = Histogram::from_samples(b, lo, width, bins);
    ha.probabilities()
        .iter()
        .zip(hb.probabilities())
        .map(|(&p, q)| p.min(q))
        .sum()
}

/// Find the threshold that best separates `zeros` from `ones` (assuming
/// `ones` tend larger) and the classification accuracy it achieves.
///
/// Returns `(threshold, accuracy)` with accuracy in [0.5, 1.0].
pub fn best_threshold(zeros: &[f64], ones: &[f64]) -> (f64, f64) {
    assert!(
        !zeros.is_empty() && !ones.is_empty(),
        "both classes need at least one sample"
    );
    let mut candidates: Vec<f64> = zeros.iter().chain(ones).copied().collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    candidates.dedup();
    let total = (zeros.len() + ones.len()) as f64;
    let mut best = (candidates[0], 0.0);
    for &t in &candidates {
        let correct =
            zeros.iter().filter(|&&z| z < t).count() + ones.iter().filter(|&&o| o >= t).count();
        let acc = correct as f64 / total;
        if acc > best.1 {
            best = (t, acc);
        }
    }
    best
}

/// Leak rate in kilobits per second given `bits` transmitted over
/// `duration_ns` of simulated time (the paper reports 4.3 kbit/s for
/// SpectreBack, §7.3).
pub fn leak_rate_kbps(bits: u64, duration_ns: f64) -> f64 {
    if duration_ns <= 0.0 {
        return 0.0;
    }
    bits as f64 / (duration_ns * 1e-9) / 1000.0
}

impl Summary {
    /// JSON form of the summary statistics.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("n", self.n)
            .with("mean", self.mean)
            .with("std_dev", self.std_dev)
            .with("min", self.min)
            .with("max", self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = Histogram::from_samples(&[-5.0, 0.5, 1.5, 100.0], 0.0, 1.0, 4);
        assert_eq!(h.count(0), 2, "underflow clamps into bin 0");
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(3), 1, "overflow clamps into the last bin");
        assert_eq!(h.total(), 4);
        assert!((h.bin_lo(2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_renders_nonempty() {
        let h = Histogram::from_samples(&[1.0, 1.0, 2.0], 0.0, 1.0, 4);
        let r = h.render(20);
        assert!(r.contains('#'));
    }

    #[test]
    fn overlap_of_identical_is_one_and_disjoint_is_zero() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let o = overlap_coefficient(&a, &a, 20);
        assert!((o - 1.0).abs() < 1e-9);

        let b: Vec<f64> = (1000..1100).map(|i| i as f64).collect();
        let o = overlap_coefficient(&a, &b, 50);
        assert!(o < 0.05, "disjoint distributions must barely overlap: {o}");
    }

    #[test]
    fn threshold_separates_clean_classes() {
        let zeros = vec![1.0, 2.0, 3.0];
        let ones = vec![10.0, 11.0, 12.0];
        let (t, acc) = best_threshold(&zeros, &ones);
        assert!(t > 3.0 && t <= 10.0);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn threshold_on_overlapping_classes_is_partial() {
        let zeros = vec![1.0, 2.0, 3.0, 10.0];
        let ones = vec![2.5, 9.0, 11.0, 12.0];
        let (_, acc) = best_threshold(&zeros, &ones);
        assert!((0.5..1.0).contains(&acc));
    }

    #[test]
    fn leak_rate_matches_hand_computation() {
        // 4300 bits in one second = 4.3 kbit/s.
        let r = leak_rate_kbps(4300, 1e9);
        assert!((r - 4.3).abs() < 1e-9);
        assert_eq!(leak_rate_kbps(100, 0.0), 0.0);
    }
}
