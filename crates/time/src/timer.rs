//! Timer observation models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of timestamps as observed by the attacker.
///
/// Implementations map *true* simulated time (nanoseconds since run start)
/// to the value the sandboxed code would actually read. Methods take `&mut
/// self` because jittered/fuzzy timers consume randomness per reading.
pub trait Timer {
    /// Observe the clock at true time `t_ns`.
    fn now(&mut self, t_ns: f64) -> f64;

    /// The nominal resolution in nanoseconds (0 for a perfect timer).
    fn resolution_ns(&self) -> f64;

    /// Observe a duration: two readings around `[start_ns, end_ns]`.
    fn measure(&mut self, start_ns: f64, end_ns: f64) -> f64 {
        let begin = self.now(start_ns);
        let end = self.now(end_ns);
        end - begin
    }
}

/// An ideal, infinitely precise timer (ground truth; *not* available to the
/// paper's attacker).
#[derive(Copy, Clone, Debug, Default)]
pub struct PerfectTimer;

impl Timer for PerfectTimer {
    fn now(&mut self, t_ns: f64) -> f64 {
        t_ns
    }

    fn resolution_ns(&self) -> f64 {
        0.0
    }
}

/// `performance.now()` as shipped after Spectre: timestamps quantized to a
/// fixed resolution, optionally with added uniform jitter (Chrome used
/// 100 ms + 100 ms jitter at the height of the mitigations; today's default
/// is 5 µs — paper §2.2).
///
/// ```
/// use racer_time::{CoarseTimer, Timer};
/// let mut t = CoarseTimer::new(5_000.0);
/// assert_eq!(t.now(4_999.0), 0.0);
/// assert_eq!(t.now(5_001.0), 5_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct CoarseTimer {
    resolution_ns: f64,
    jitter_ns: f64,
    rng: StdRng,
}

impl CoarseTimer {
    /// A quantizing timer with `resolution_ns` granularity and no jitter.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ns` is not strictly positive.
    pub fn new(resolution_ns: f64) -> Self {
        Self::with_jitter(resolution_ns, 0.0, 0)
    }

    /// A quantizing timer that also adds uniform jitter in
    /// `[0, jitter_ns)` to each reading (deterministic per `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ns` is not strictly positive or `jitter_ns` is
    /// negative.
    pub fn with_jitter(resolution_ns: f64, jitter_ns: f64, seed: u64) -> Self {
        assert!(resolution_ns > 0.0, "resolution must be positive");
        assert!(jitter_ns >= 0.0, "jitter must be non-negative");
        CoarseTimer {
            resolution_ns,
            jitter_ns,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's 5 µs browser-timer threshold (§3).
    pub fn browser_5us() -> Self {
        Self::new(5_000.0)
    }

    /// Chrome-2018-style 100 ms resolution with 100 ms jitter (§2.2).
    pub fn chrome_2018(seed: u64) -> Self {
        Self::with_jitter(100_000_000.0, 100_000_000.0, seed)
    }
}

impl Timer for CoarseTimer {
    fn now(&mut self, t_ns: f64) -> f64 {
        let quantized = (t_ns / self.resolution_ns).floor() * self.resolution_ns;
        if self.jitter_ns > 0.0 {
            quantized + self.rng.gen_range(0.0..self.jitter_ns)
        } else {
            quantized
        }
    }

    fn resolution_ns(&self) -> f64 {
        self.resolution_ns
    }
}

/// The fuzzy-time countermeasure (Kohlbrenner & Shacham, §2.2): clock edges
/// are randomly perturbed so that even edge-thresholding sees a noisy edge.
/// Each resolution-sized interval gets an independent phase offset.
#[derive(Clone, Debug)]
pub struct FuzzyTimer {
    resolution_ns: f64,
    rng: StdRng,
}

impl FuzzyTimer {
    /// A fuzzy timer of nominal `resolution_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ns` is not strictly positive.
    pub fn new(resolution_ns: f64, seed: u64) -> Self {
        assert!(resolution_ns > 0.0, "resolution must be positive");
        FuzzyTimer {
            resolution_ns,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Timer for FuzzyTimer {
    fn now(&mut self, t_ns: f64) -> f64 {
        // Perturb the reading by up to ±half a resolution before
        // quantizing: the edge the attacker sees wobbles per reading.
        let dither = self.rng.gen_range(-0.5..0.5) * self.resolution_ns;
        ((t_ns + dither) / self.resolution_ns).floor() * self.resolution_ns
    }

    fn resolution_ns(&self) -> f64 {
        self.resolution_ns
    }
}

/// The SharedArrayBuffer counting-thread timer of Schwarz et al. (§2.2):
/// a worker increments a shared counter in a tight loop, giving the main
/// thread an effective resolution of 2–15 ns. Removed from browsers as a
/// Spectre response — included here as the *baseline* that Hacky Racers
/// resurrect without any shared memory.
#[derive(Copy, Clone, Debug)]
pub struct SabCounterTimer {
    period_ns: f64,
}

impl SabCounterTimer {
    /// A counting thread incrementing every `period_ns` (2–15 ns is
    /// realistic; the default [`SabCounterTimer::typical`] uses 3 ns).
    ///
    /// # Panics
    ///
    /// Panics if `period_ns` is not strictly positive.
    pub fn new(period_ns: f64) -> Self {
        assert!(period_ns > 0.0, "period must be positive");
        SabCounterTimer { period_ns }
    }

    /// The ~3 ns/increment counting thread from the paper's citation.
    pub fn typical() -> Self {
        Self::new(3.0)
    }

    /// The raw counter value at time `t_ns`.
    pub fn count(&self, t_ns: f64) -> u64 {
        (t_ns / self.period_ns).floor() as u64
    }
}

impl Timer for SabCounterTimer {
    fn now(&mut self, t_ns: f64) -> f64 {
        self.count(t_ns) as f64 * self.period_ns
    }

    fn resolution_ns(&self) -> f64 {
        self.period_ns
    }
}

/// Estimate a sub-resolution duration with the edge-thresholding technique
/// (§2.2): repeat the measurement at random clock phases and count how often
/// the duration straddles a clock edge. The crossing probability equals
/// `duration / resolution` for durations below one tick.
///
/// Returns the estimated duration in nanoseconds.
pub fn edge_threshold_estimate(
    timer: &mut dyn Timer,
    duration_ns: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let res = timer.resolution_ns();
    assert!(
        res > 0.0,
        "edge thresholding needs a finite-resolution timer"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut crossings = 0usize;
    for _ in 0..trials {
        let start = rng.gen_range(0.0..res * 1000.0);
        if timer.measure(start, start + duration_ns) > 0.0 {
            crossings += 1;
        }
    }
    (crossings as f64 / trials as f64) * res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_timer_is_identity() {
        let mut t = PerfectTimer;
        assert_eq!(t.now(123.456), 123.456);
        assert_eq!(t.measure(10.0, 250.0), 240.0);
    }

    #[test]
    fn coarse_timer_hides_sub_resolution_differences() {
        let mut t = CoarseTimer::browser_5us();
        // A 100 ns LLC-miss difference (paper §2.1) is invisible…
        assert_eq!(t.measure(0.0, 100.0), 0.0);
        // …while a magnified 50 µs difference is plainly visible.
        assert!(t.measure(0.0, 50_000.0) >= 45_000.0);
    }

    #[test]
    fn coarse_timer_quantizes_to_multiples() {
        let mut t = CoarseTimer::new(2_000.0);
        for raw in [0.0, 1.0, 1999.0, 2000.0, 12345.0] {
            let v = t.now(raw);
            assert_eq!(v % 2_000.0, 0.0, "reading {v} not on a tick");
            assert!(v <= raw && raw - v < 2_000.0);
        }
    }

    #[test]
    fn jittered_timer_varies_readings() {
        let mut t = CoarseTimer::with_jitter(5_000.0, 5_000.0, 1);
        let a = t.now(10_000.0);
        let b = t.now(10_000.0);
        assert_ne!(a, b, "jitter should vary repeated readings of one instant");
    }

    #[test]
    fn sab_counter_resolves_nanoseconds() {
        let mut t = SabCounterTimer::typical();
        // A 100 ns difference is ~33 counts: easily visible.
        assert!(t.measure(0.0, 100.0) >= 90.0);
        assert_eq!(t.count(9.0), 3);
    }

    #[test]
    fn fuzzy_timer_wobbles_edges() {
        let mut t = FuzzyTimer::new(5_000.0, 7);
        // Reading exactly at an edge sometimes rounds down, sometimes up.
        let readings: Vec<f64> = (0..100).map(|_| t.now(5_000.0)).collect();
        let distinct: std::collections::HashSet<u64> = readings.iter().map(|r| *r as u64).collect();
        assert!(distinct.len() > 1, "fuzzy edges must wobble");
    }

    #[test]
    fn edge_thresholding_recovers_sub_tick_durations() {
        let mut t = CoarseTimer::new(5_000.0);
        let est = edge_threshold_estimate(&mut t, 1_000.0, 20_000, 42);
        assert!(
            (est - 1_000.0).abs() < 150.0,
            "edge thresholding should estimate ~1000 ns, got {est:.0}"
        );
    }

    #[test]
    fn edge_thresholding_is_defeated_by_fuzzy_time() {
        // Against a fuzzy timer the crossing probability still averages
        // d/res, but individual estimates are noisier; more importantly the
        // technique cannot sharpen a *single* measurement. We check the
        // aggregate stays unbiased-ish but with degraded precision vs the
        // plain coarse timer at low trial counts.
        let mut plain = CoarseTimer::new(5_000.0);
        let mut fuzzy = FuzzyTimer::new(5_000.0, 3);
        let trials = 60;
        let mut plain_err = 0.0;
        let mut fuzzy_err = 0.0;
        for seed in 0..40 {
            let p = edge_threshold_estimate(&mut plain, 1_000.0, trials, seed);
            let f = edge_threshold_estimate(&mut fuzzy, 1_000.0, trials, seed);
            plain_err += (p - 1_000.0).abs();
            fuzzy_err += (f - 1_000.0).abs();
        }
        assert!(
            fuzzy_err >= plain_err * 0.8,
            "fuzzy time must not make estimation easier: plain={plain_err:.0} fuzzy={fuzzy_err:.0}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let _ = CoarseTimer::new(0.0);
    }
}
