//! Recover an AES-style key nibble with prime+probe, timed entirely by
//! ILP races — the cache attack the paper's §2.1 says needs a fine timer,
//! running without one.
//!
//! Run with: `cargo run --release -p hr-examples --bin aes_key_recovery`

use hacky_racers::attacks::AesAttack;
use hacky_racers::machine::Machine;
use racer_cpu::CpuConfig;
use racer_mem::HierarchyConfig;

fn main() {
    println!("=== AES first-round key recovery via ILP-race prime+probe ===\n");

    let mut machine = Machine::with(
        CpuConfig::coffee_lake().with_load_recording(),
        HierarchyConfig::coffee_lake(),
    );
    let attack = AesAttack::new(machine.layout());

    let secret_key: u8 = 0xD6; // the victim's key byte
    attack.plant_key(&mut machine, secret_key);
    println!("victim key byte (hidden from attacker): {secret_key:#04x}");
    println!("victim: one T-table lookup at T[(p ^ k) >> 4]\n");

    let plaintexts = [0x0u8, 0x3, 0x7, 0xC];
    let recovery = attack.recover_key_nibble(&mut machine, &plaintexts);

    for (p, line) in recovery.plaintexts.iter().zip(&recovery.observed_lines) {
        match line {
            Some(l) => println!(
                "plaintext {p:#03x}_ → victim touched table line {l:2} → key nibble guess {:#x}",
                l ^ p
            ),
            None => println!("plaintext {p:#03x}_ → no line observed"),
        }
    }

    match recovery.key_nibble {
        Some(n) => {
            println!(
                "\nrecovered key high nibble: {n:#x} (truth: {:#x})",
                secret_key >> 4
            );
            println!("match: {}", n == secret_key >> 4);
        }
        None => println!("\nrecovery failed"),
    }
    println!("\nEvery hit/miss decision above was made by a racing gadget, not a timer.");
}
