//! A covert channel through the reorder race + PLRU magnifier: transmit an
//! arbitrary message one bit at a time using only ILP races and a 5 µs
//! timer — the composition that makes §7.3's channel tick, isolated.
//!
//! Run with: `cargo run --release -p hr-examples --bin covert_channel`

use hacky_racers::magnify::{PlruInput, PlruMagnifier};
use hacky_racers::prelude::*;
use racer_time::{CoarseTimer, Timer};

/// Send one bit: insert the magnifier's A and B lines in bit-dependent
/// order (this is what a racing gadget does from a timing difference).
fn send_bit(m: &mut Machine, mag: &PlruMagnifier, bit: bool) {
    mag.prepare(m);
    let (a, b) = (mag.line_a(m), mag.line_b(m));
    if bit {
        m.warm(a);
        m.warm(b);
    } else {
        m.warm(b);
        m.warm(a);
    }
}

/// Receive one bit through the coarse timer.
fn recv_bit(m: &mut Machine, mag: &PlruMagnifier, timer: &mut dyn Timer, threshold: f64) -> bool {
    let observed = m.run_timed(&mag.program(m, PlruInput::Reorder), timer);
    observed > threshold
}

fn main() {
    println!("=== ILP covert channel (reorder race → PLRU magnifier → 5 µs timer) ===\n");

    let message = b"OoO leaks";
    let mut m = Machine::noisy(7);
    let mag = PlruMagnifier::with(m.layout(), 5, 1500);
    let mut timer = CoarseTimer::browser_5us();

    // Calibrate the decision threshold from two known transmissions.
    send_bit(&mut m, &mag, false);
    let zero = m.run_timed(&mag.program(&m, PlruInput::Reorder), &mut timer);
    send_bit(&mut m, &mag, true);
    let one = m.run_timed(&mag.program(&m, PlruInput::Reorder), &mut timer);
    let threshold = (zero + one) / 2.0;
    println!("calibration: bit0 ≈ {zero:.0} ns, bit1 ≈ {one:.0} ns, threshold {threshold:.0} ns\n");

    let start_ns = m.elapsed_ns();
    let mut received = Vec::with_capacity(message.len());
    let mut errors = 0u32;
    for &byte in message {
        let mut out = 0u8;
        for bit in 0..8 {
            let tx = (byte >> bit) & 1 == 1;
            send_bit(&mut m, &mag, tx);
            let rx = recv_bit(&mut m, &mag, &mut timer, threshold);
            if rx {
                out |= 1 << bit;
            }
            if rx != tx {
                errors += 1;
            }
        }
        received.push(out);
    }
    let elapsed = m.elapsed_ns() - start_ns;
    let bits = (message.len() * 8) as f64;

    println!("sent    : {:?}", String::from_utf8_lossy(message));
    println!("received: {:?}", String::from_utf8_lossy(&received));
    println!("bit errors: {errors}/{bits}");
    println!(
        "throughput: {:.1} kbit/s of simulated time",
        bits / (elapsed * 1e-9) / 1000.0
    );
}
