//! Defence lab: run both racing-gadget families against every modelled
//! hardware countermeasure (§8) and watch which channels survive.
//!
//! Run with: `cargo run --release -p hr-examples --bin defence_lab`

use hacky_racers::experiments::countermeasures::{countermeasure_matrix, render};
use hacky_racers::experiments::detection::{profile_suite, render as render_detection};

fn main() {
    println!("=== Defence lab (paper §8) ===\n");

    println!("-- Gadget vs hardware defence --");
    println!("{}", render(&countermeasure_matrix()));
    println!("Reading: transient-execution defences (delay-on-miss, invisible");
    println!("speculation, GhostMinion-style strictness) stop only the gadget that");
    println!("uses transient execution. The reorder race has no speculative");
    println!("component at all — only genuine in-order execution silences it.\n");

    println!("-- Run-time detection (hardware counters) --");
    println!("{}", render_detection(&profile_suite()));
    println!("Reading: the L1-miss counter flags the PLRU magnifier AND ordinary");
    println!("pointer chasing (high false-positive rate); the arithmetic magnifier");
    println!("needs a different detector entirely; a lone racing gadget looks like");
    println!("normal out-of-order execution.");
}
