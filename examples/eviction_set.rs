//! LLC eviction-set generation without SharedArrayBuffer (§7.4).
//!
//! Profile a pool of candidate addresses down to a minimal last-level-cache
//! eviction set, using only the Hacky-Racers timer (MUL-referenced racing
//! gadget + PLRU magnifier) for every timing decision.
//!
//! Run with: `cargo run --release -p hr-examples --bin eviction_set`

use hacky_racers::attacks::EvictionSetAttack;
use hacky_racers::prelude::*;
use racer_mem::candidate_pool;

fn main() {
    println!("=== Eviction-set generation with an ILP-race timer ===\n");

    let mut machine = Machine::small_llc();
    let l3_cfg = *machine.cpu().hierarchy().l3().config();
    println!(
        "LLC: {} sets x {} ways, inclusive (scaled-down for demonstration)",
        l3_cfg.sets, l3_cfg.ways
    );

    let base = machine.layout().ev_pool_base;
    let target = Addr(base.0 + 0x800);
    let pool = candidate_pool(Addr(base.0 + 4096), 48, 0x800);
    println!("target: {target}");
    println!(
        "candidate pool: {} page-stride addresses, L3 set unknown to the attacker\n",
        pool.len()
    );

    let attack = EvictionSetAttack::new(machine.layout());
    match attack.build_minimal_set(&mut machine, target, &pool, l3_cfg.ways) {
        Some(set) => {
            println!("minimal eviction set found ({} members):", set.len());
            let l3set = machine.cpu().hierarchy().l3().set_index(target.line());
            for a in &set {
                let s = machine.cpu().hierarchy().l3().set_index(a.line());
                println!(
                    "  {a}  (L3 set {s}{})",
                    if s == l3set {
                        ", congruent ✓"
                    } else {
                        ", NOT congruent ✗"
                    }
                );
            }
            let still = attack.evicts(&mut machine, target, &set);
            println!("\nverification: minimal set evicts the target: {still}");
        }
        None => println!("profiling failed — pool did not evict the target"),
    }
}
