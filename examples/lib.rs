//! Shared helpers for the runnable examples.

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
