//! Quickstart: build a fine-grained timer out of coarse parts.
//!
//! This walks the full Hacky-Racers pipeline on a simulated out-of-order
//! machine whose only timer is quantized to 5 µs (the paper's §3 threat
//! model): race a target expression against a reference path, magnify the
//! one-bit verdict through a tree-PLRU cache set, and read it with the
//! coarse timer.
//!
//! Run with: `cargo run --release -p hr-examples --bin quickstart`

use hacky_racers::attacks::IlpTimer;
use hacky_racers::prelude::*;
use racer_time::{CoarseTimer, Timer};

fn main() {
    println!("=== Hacky Racers quickstart ===\n");

    // A Coffee-Lake-class out-of-order core with a tree-PLRU L1.
    let mut machine = Machine::baseline();
    println!(
        "machine: 2 GHz out-of-order core, {}-entry ROB, tree-PLRU L1",
        machine.cpu().config().rob_size
    );

    // The attacker's only clock: performance.now() at 5 µs.
    let mut browser_clock = CoarseTimer::browser_5us();
    println!(
        "attacker timer resolution: {} ns\n",
        browser_clock.resolution_ns()
    );

    // Step 1: the coarse timer alone cannot see small timing differences.
    let short = PathSpec::op_chain(AluOp::Add, 10); // ~10 cycles = 5 ns
    let long = PathSpec::op_chain(AluOp::Add, 40); // ~40 cycles = 20 ns
    println!("step 1: 10-add vs 40-add chains differ by ~15 ns — invisible at 5 µs.");

    // Step 2: an ILP race *can* see it. The race leaves its verdict in
    // cache state; a PLRU magnifier stretches that bit into tens of
    // microseconds; the browser clock reads it comfortably.
    let timer = IlpTimer::new(machine.layout());
    let threshold = timer.calibrate(&mut machine, &mut browser_clock);
    println!("step 2: calibrated magnifier threshold = {threshold:.0} ns");

    for (name, path) in [("10-add chain", &short), ("40-add chain", &long)] {
        let exceeds = timer.exceeds_observed(&mut machine, path, 25, &mut browser_clock, threshold);
        println!(
            "  {name}: {} the 25-add reference (decided via the 5 µs timer)",
            if exceeds { "exceeds" } else { "is under" }
        );
    }

    // Step 3: full measurement — binary-search the reference length to
    // *measure* an unknown expression, to ~1-cycle granularity (§7.2).
    let secret_work = PathSpec::op_chain(AluOp::Mul, 9); // 27 cycles, unknown to us
    let measured = timer
        .measure_ref_ops(&mut machine, &secret_work)
        .expect("inside the measurable window");
    println!(
        "\nstep 3: unknown expression measured at ~{measured} ADD-units (true cost: 27 cycles)"
    );

    println!("\nNothing above used a timer finer than 5 µs. That is the paper's point.");
}
