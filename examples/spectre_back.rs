//! SpectreBack end-to-end: leak a secret string backwards in time (§7.3).
//!
//! The bounds-check-bypassing read happens *after* the racing gadget in
//! program order, yet out-of-order execution delivers its effect to the
//! race before the misprediction is discovered — so rollback-style Spectre
//! defences are too late by construction.
//!
//! Run with: `cargo run --release -p hr-examples --bin spectre_back`

use hacky_racers::attacks::SpectreBack;
use hacky_racers::prelude::*;
use racer_time::CoarseTimer;

fn main() {
    println!("=== SpectreBack: backwards-in-time secret leak ===\n");

    let secret = b"HACKY RACERS @ ASPLOS 2023";
    let mut machine = Machine::noisy(0xCAFE);
    let attack = SpectreBack::new(machine.layout());
    attack.plant_secret(&mut machine, secret);

    println!("victim secret : {:?}", String::from_utf8_lossy(secret));
    println!("timer         : performance.now() at 5 µs + DRAM jitter\n");

    let mut timer = CoarseTimer::browser_5us();
    let report = attack.leak_bytes(&mut machine, secret.len(), &mut timer);

    let correct_bits: u32 = report
        .recovered
        .iter()
        .zip(secret)
        .map(|(a, b)| 8 - (a ^ b).count_ones())
        .sum();
    let accuracy = correct_bits as f64 / (secret.len() * 8) as f64;

    println!(
        "recovered     : {:?}",
        String::from_utf8_lossy(&report.recovered)
    );
    println!("bit accuracy  : {:.1}% (paper: >88%)", accuracy * 100.0);
    println!(
        "leak rate     : {:.2} kbit/s of simulated time (paper: 4.3 kbit/s)",
        report.kbps
    );
    println!("simulated time: {:.2} ms", report.elapsed_ns / 1e6);
}
