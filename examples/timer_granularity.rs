//! Reproduce the §7.2 granularity experiment interactively: measure chains
//! of various operations in ADD-units and print the Figure 8/9 staircases.
//!
//! Run with: `cargo run --release -p hr-examples --bin timer_granularity`

use hacky_racers::experiments::granularity::{figure8, figure9, granularity_table};

fn main() {
    println!("=== Racing-gadget granularity (Figures 8 & 9) ===\n");

    println!("-- Figure 8: targets measured against an ADD reference --");
    let fig8 = figure8(34, 2, 80);
    for series in &fig8 {
        println!("{}", series.render());
    }

    println!("-- Figure 9: targets measured against a MUL reference --");
    let fig9 = figure9(30, 2, 60);
    for series in &fig9 {
        println!("{}", series.render());
    }

    println!("-- §7.2 summary --");
    let mut all = fig8;
    all.extend(fig9);
    println!("{}", granularity_table(&all).render());
}
