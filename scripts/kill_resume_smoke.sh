#!/usr/bin/env bash
# Kill-and-resume smoke test: SIGKILL a checkpointed sweep mid-run, then
# resume it and require byte-identical convergence with a never-killed run.
#
# This is the external-violence counterpart of the in-process
# fault-injection suite (crates/lab/tests/fault_injection.rs): the process
# dies by real `kill -9`, not a simulated abort, so the whole
# atomic-write + journal protocol is exercised against a genuinely
# arbitrary crash point. One scenario is held open with an injected sleep
# so the kill is guaranteed to land mid-sweep, after at least two sibling
# units have journaled.
#
# Exit 0: resume converged (results byte-identical to the fault-free
# golden, journal strictly parseable, dashboard renders). Any other exit
# is a protocol violation.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/racer-lab
cargo build --release -q -p racer-lab

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "# fault-free golden run"
"$BIN" run --all --quick --quiet --out "$work/golden"

# Hold the last registry scenario open (10-minute injected sleep) so the
# sweep cannot finish before the kill arrives.
hold=$("$BIN" list --names-json | sed 's/.*"\([^"]*\)"\]$/\1/')
echo "# checkpointed run, holding scenario:${hold} open"
RACER_FAULT_PLAN="sleep@scenario:${hold}=600000" \
  "$BIN" run --all --quick --quiet --out "$work/out" --checkpoint "$work/ckpt" &
pid=$!

# SIGKILL as soon as at least two units are journaled.
journaled=0
for _ in $(seq 1 600); do
  journaled=$(find "$work/ckpt" -name '*.json' 2>/dev/null | wc -l)
  [ "$journaled" -ge 2 ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "error: run exited before the kill (journaled=$journaled)" >&2
    exit 1
  fi
  sleep 0.1
done
if [ "$journaled" -lt 2 ]; then
  echo "error: never saw 2 journaled units" >&2
  kill -9 "$pid" 2>/dev/null || true
  exit 1
fi
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
echo "# SIGKILLed the sweep after ${journaled} journaled unit(s)"

# Resume with no faults: journaled units replay byte-for-byte, the rest
# re-run. A corrupt journal record would abort this step with exit 8,
# so a successful resume doubles as the strict-parse check on the
# journal.
echo "# resuming"
"$BIN" run --all --quick --quiet --out "$work/out" --checkpoint "$work/ckpt"

echo "# verifying byte-identity with the golden run"
# perf_baseline measures wall-clock throughput — the one deliberately
# non-deterministic scenario (see KNOWN_FAILURES.md), so two runs can
# never byte-match it. Its presence + strict-parseability is still
# checked by the dashboard render below.
diff -r --exclude=perf_baseline.json "$work/golden" "$work/out"
test -f "$work/out/perf_baseline.json"

# The dashboard render strict-parses and envelope-validates every result
# file; rendering the resumed outputs proves none are corrupt.
"$BIN" report "$work/site" "$work/out" >/dev/null

echo "# kill-and-resume smoke: OK (${journaled} unit(s) survived the kill)"
