//! Integration-test helpers shared across the cross-crate test files.

use hacky_racers::machine::Machine;

/// Bit-accuracy between two byte strings.
pub fn bit_accuracy(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len());
    let correct: u32 = a.iter().zip(b).map(|(x, y)| 8 - (x ^ y).count_ones()).sum();
    correct as f64 / (a.len() * 8) as f64
}

/// A baseline machine (re-exported constructor for test brevity).
pub fn machine() -> Machine {
    Machine::baseline()
}
