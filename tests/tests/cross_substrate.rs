//! Cross-substrate consistency: gadget-generated programs must be
//! architecturally exact on the out-of-order core (vs the in-order
//! reference interpreter), for every gadget family — speculation may only
//! ever change timing and cache state.

use hacky_racers::layout::Layout;
use hacky_racers::machine::Machine;
use hacky_racers::magnify::{ArithmeticMagnifier, PlruInput, PlruMagnifier};
use hacky_racers::path::PathSpec;
use hacky_racers::racing::{ReorderRace, TransientPaRace};
use proptest::prelude::*;
use racer_cpu::{Backend, Cpu, CpuConfig};
use racer_isa::{interp, AluOp, Program};
use racer_mem::{Addr, HierarchyConfig};

/// Run `prog` on both engines with the given `x` input; compare registers.
fn assert_architecturally_exact(prog: &Program, x: u64) {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::small_plru());
    cpu.mem_mut().write(Layout::default().x_flag.0, x);
    let mut ref_mem = cpu.mem().clone();
    let reference = interp::run(prog, &mut ref_mem, 10_000_000).expect("terminates");
    let run = cpu.run_one(prog, Backend::EventDriven);
    assert!(!run.limit_hit);
    assert_eq!(run.regs, reference.regs, "register divergence");
    assert_eq!(
        run.committed, reference.steps,
        "dynamic instruction count divergence"
    );
    assert_eq!(cpu.mem(), &ref_mem, "memory divergence");
}

#[test]
fn racing_gadgets_are_architecturally_exact_in_both_phases() {
    let layout = Layout::default();
    let race = TransientPaRace::new(layout);
    let prog = race.program(
        &PathSpec::op_chain(AluOp::Add, 25),
        &PathSpec::op_chain(AluOp::Mul, 4),
    );
    assert_architecturally_exact(&prog, 0); // training phase
    assert_architecturally_exact(&prog, 1); // detection phase (mispredicts)
}

#[test]
fn reorder_gadget_is_architecturally_exact() {
    let layout = Layout::default();
    let race = ReorderRace::new(layout);
    let prog = race.program(
        &PathSpec::op_chain(AluOp::Add, 12),
        &PathSpec::op_chain(AluOp::Div, 3),
        Addr(0x0700_0000),
        Addr(0x0700_2000),
    );
    assert_architecturally_exact(&prog, 0);
}

#[test]
fn magnifier_programs_are_architecturally_exact() {
    let m = Machine::baseline();
    let mag = PlruMagnifier::with(m.layout(), 5, 40);
    assert_architecturally_exact(&mag.program(&m, PlruInput::PresenceAbsence), 0);
    assert_architecturally_exact(&mag.program(&m, PlruInput::Reorder), 0);

    let mut arith = ArithmeticMagnifier::new(m.layout());
    arith.stages = 6;
    assert_architecturally_exact(&arith.program(7), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any pair of op-chain paths raced against each other is exact.
    #[test]
    fn arbitrary_races_are_architecturally_exact(
        cond_len in 1usize..40,
        body_len in 1usize..40,
        op_pick in 0u8..3,
        x in 0u64..2,
    ) {
        let op = match op_pick {
            0 => AluOp::Add,
            1 => AluOp::Mul,
            _ => AluOp::Div,
        };
        let race = TransientPaRace::new(Layout::default());
        let prog = race.program(
            &PathSpec::op_chain(AluOp::Add, cond_len),
            &PathSpec::op_chain(op, body_len),
        );
        let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::small_plru());
        cpu.mem_mut().write(Layout::default().x_flag.0, x);
        let mut ref_mem = cpu.mem().clone();
        let reference = interp::run(&prog, &mut ref_mem, 1_000_000).expect("terminates");
        let run = cpu.run_one(&prog, Backend::EventDriven);
        prop_assert_eq!(&run.regs, &reference.regs);
        prop_assert_eq!(run.committed, reference.steps);
    }
}
