//! End-to-end pipeline tests spanning every crate: ISA → OoO core → cache
//! hierarchy → gadgets → coarse timer → statistics.

use hacky_racers::attacks::{IlpTimer, SpectreBack};
use hacky_racers::machine::Machine;
use hacky_racers::magnify::{PlruInput, PlruMagnifier};
use hacky_racers::path::PathSpec;
use hr_integration_tests::bit_accuracy;
use racer_isa::AluOp;
use racer_time::{stats, CoarseTimer, FuzzyTimer, SabCounterTimer, Timer};

/// The paper's whole premise in one test: a timing difference invisible to
/// the 5 µs browser timer is recovered through the racing+magnifier stack,
/// and the recovered verdicts agree with what a (forbidden)
/// SharedArrayBuffer-grade timer would have said directly.
#[test]
fn coarse_timer_pipeline_matches_fine_timer_ground_truth() {
    let mut m = Machine::baseline();
    let ilp = IlpTimer::new(m.layout());
    let mut coarse = CoarseTimer::browser_5us();
    let threshold = ilp.calibrate(&mut m, &mut coarse);

    let mut sab = SabCounterTimer::typical();
    for target_len in [5usize, 15, 30, 45] {
        let target = PathSpec::op_chain(AluOp::Add, target_len);
        // Ground truth via the (removed) fine-grained timer model:
        // does the chain exceed 25 cycles?
        let fine_says = {
            let cycles = target_len as f64; // 1 cycle per chained add
            sab.measure(0.0, cycles * 0.5) > 25.0 * 0.5 - 1.0
        };
        let hacky_says = ilp.exceeds_observed(&mut m, &target, 25, &mut coarse, threshold);
        assert_eq!(
            hacky_says, fine_says,
            "{target_len}-add chain: ILP pipeline disagrees with fine-timer ground truth"
        );
    }
}

/// The magnified difference survives even 100 ms timers with 100 ms jitter
/// (Chrome 2018) when enough rounds accumulate — "no such restrictions can
/// be designed to limit Hacky Racers" (§1).
#[test]
fn magnification_defeats_chrome_2018_coarsening() {
    let mut m = Machine::baseline();
    // 700k rounds ≈ 8.4 ms of difference: still below 100 ms resolution,
    // so single-shot detection needs repetition at this coarseness; what we
    // verify here is the *unbounded* scaling of the PLRU magnifier: the
    // difference grows linearly as far as we care to run it.
    let diff_at = |m: &mut Machine, rounds: usize| {
        let mag = PlruMagnifier::with(m.layout(), 5, rounds);
        mag.prepare(m);
        let absent = mag.measure(m, PlruInput::PresenceAbsence);
        mag.prepare(m);
        let a = mag.line_a(m);
        m.warm(a);
        let present = mag.measure(m, PlruInput::PresenceAbsence);
        present.saturating_sub(absent)
    };
    let d1 = diff_at(&mut m, 2_000);
    let d2 = diff_at(&mut m, 20_000);
    let ratio = d2 as f64 / d1 as f64;
    assert!(
        (8.0..=12.0).contains(&ratio),
        "magnification must scale linearly without bound: {d1} → {d2}"
    );
}

/// Fuzzy time (the §2.2 countermeasure) does not stop the attack either:
/// with a magnified difference several ticks wide, wobbling edges only add
/// noise, not safety.
#[test]
fn magnified_difference_survives_fuzzy_time() {
    let mut m = Machine::noisy(3);
    let mag = PlruMagnifier::with(m.layout(), 5, 4_000); // ~48 µs difference
    let mut fuzzy = FuzzyTimer::new(5_000.0, 99);

    let mut absent_obs = Vec::new();
    let mut present_obs = Vec::new();
    for _ in 0..6 {
        mag.prepare(&mut m);
        absent_obs.push(m.run_timed(&mag.program(&m, PlruInput::PresenceAbsence), &mut fuzzy));
        mag.prepare(&mut m);
        let a = mag.line_a(&m);
        m.warm(a);
        present_obs.push(m.run_timed(&mag.program(&m, PlruInput::PresenceAbsence), &mut fuzzy));
    }
    let (_, acc) = stats::best_threshold(&absent_obs, &present_obs);
    assert!(
        acc > 0.9,
        "fuzzy 5 µs timer must not defeat a ~50 µs magnified signal: accuracy {acc:.2}"
    );
}

/// SpectreBack across machines with different noise seeds: accuracy holds.
#[test]
fn spectre_back_is_robust_across_noise_seeds() {
    let secret = b"OoO";
    for seed in [1u64, 77, 4242] {
        let mut m = Machine::noisy(seed);
        let atk = SpectreBack::new(m.layout());
        atk.plant_secret(&mut m, secret);
        let mut timer = CoarseTimer::browser_5us();
        let report = atk.leak_bytes(&mut m, secret.len(), &mut timer);
        let acc = bit_accuracy(secret, &report.recovered);
        assert!(
            acc > 0.88,
            "seed {seed}: accuracy {acc:.2} below the paper's 88%"
        );
    }
}

/// The full measurement pipeline is reusable: one machine, many
/// measurements, no cross-contamination.
#[test]
fn repeated_measurements_do_not_contaminate_each_other() {
    let mut m = Machine::baseline();
    let ilp = IlpTimer::new(m.layout());
    let mut coarse = CoarseTimer::browser_5us();
    let threshold = ilp.calibrate(&mut m, &mut coarse);
    let short = PathSpec::op_chain(AluOp::Add, 6);
    let long = PathSpec::op_chain(AluOp::Add, 48);
    for round in 0..4 {
        assert!(
            !ilp.exceeds_observed(&mut m, &short, 25, &mut coarse, threshold),
            "round {round}: short chain misread"
        );
        assert!(
            ilp.exceeds_observed(&mut m, &long, 25, &mut coarse, threshold),
            "round {round}: long chain misread"
        );
    }
}
