//! The paper's headline claims, each as one executable assertion, at
//! reduced scale (the `racer-bench` binaries run the full versions).

use hacky_racers::experiments::{
    countermeasures, distribution, ev_eval, granularity, magnifier_sweeps, par_seq,
    repetition_figure,
};
use racer_isa::AluOp;

/// §1/§5: ILP races measure arbitrary fine-grained timing differences.
#[test]
fn claim_racing_gadgets_time_single_operations() {
    let s = granularity::measure_series(AluOp::Add, Some(AluOp::Add), &[6, 12, 18, 24], 70);
    let slope = s.slope().expect("measurable");
    assert!((0.8..=1.3).contains(&slope));
    assert!(s.granularity() <= 3, "paper: 1–3 op granularity");
}

/// §7.1: repetition without racing cancels; with racing it transmits.
#[test]
fn claim_repetition_needs_racing() {
    let bare = repetition_figure::figure7(false, 20);
    let raced = repetition_figure::figure7(true, 20);
    assert!(bare.total_separation() < 0.05);
    assert!(raced.total_separation() > 0.05);
}

/// §6.1/§6.2 + Figure 10: the PLRU magnifier separates the two transmitted
/// states with almost no distribution overlap.
#[test]
fn claim_reorder_magnifier_distributions_separate() {
    let r = distribution::figure10(6, 500);
    assert!(r.overlap < 0.1, "overlap {:.3}", r.overlap);
    assert!(r.accuracy > 0.95);
}

/// §6.3 + Figure 11: prefetching makes the arbitrary-replacement magnifier
/// unbounded; without it, the set count caps it.
#[test]
fn claim_prefetching_lifts_the_set_cap() {
    let series = magnifier_sweeps::figure11(&[2, 10], 30);
    let find = |label: &str| series.iter().find(|s| s.label == label).unwrap();
    let with = &find("fifo-with-prefetch").points;
    let without = &find("random-no-prefetch").points;
    let with_growth = with[1].diff_us - with[0].diff_us;
    let without_growth = without[1].diff_us - without[0].diff_us;
    assert!(
        with_growth > without_growth,
        "prefetch growth {with_growth:.2} vs capped {without_growth:.2}"
    );
}

/// §6.4 + Figure 12: the arithmetic magnifier accumulates without touching
/// the cache, until the timer interrupt bounds it.
#[test]
fn claim_arithmetic_magnifier_is_interrupt_bounded() {
    let free = magnifier_sweeps::figure12(&[40, 120], 20, None);
    let bound = magnifier_sweeps::figure12(&[40, 120], 20, Some(6_000));
    assert!(free.points[1].diff_us > free.points[0].diff_us);
    let free_growth = free.points[1].diff_us - free.points[0].diff_us;
    let bound_growth = bound.points[1].diff_us - bound.points[0].diff_us;
    assert!(bound_growth < free_growth);
}

/// §6.3.3: the paper's SEQ=6/PAR=5 sizing yields ~96% eviction probability.
#[test]
fn claim_par_seq_sizing() {
    let p = par_seq::evict_probability(6, 5, 8, 3000);
    assert!(p > 0.9, "got {p:.3}");
}

/// §7.4: eviction-set profiling succeeds at the paper's 100% rate.
#[test]
fn claim_eviction_set_success_rate() {
    let eval = ev_eval::evaluate(2, 48);
    assert_eq!(eval.rate(), 1.0);
}

/// §8: the gadget-vs-defence matrix matches the paper: transient defences
/// stop only the transient gadget; in-order stops everything.
#[test]
fn claim_countermeasure_matrix() {
    let rows = countermeasures::countermeasure_matrix();
    for row in &rows {
        match row.countermeasure.as_str() {
            "baseline" => {
                assert!(row.transient_pa_works && row.reorder_works);
            }
            "in-order" => {
                assert!(!row.transient_pa_works && !row.reorder_works);
            }
            _ => {
                assert!(
                    !row.transient_pa_works,
                    "{} must stop transient races",
                    row.countermeasure
                );
                assert!(
                    row.reorder_works,
                    "{} must not stop reorder races",
                    row.countermeasure
                );
            }
        }
    }
}
