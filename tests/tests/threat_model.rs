//! Threat-model conformance (paper §3): every *attack* program the library
//! generates must consist only of what restricted JavaScript can express —
//! "simple arithmetic operations, branches, loads, and coarse-grained
//! timers". No flushes, no fences, no stores into foreign memory.

use hacky_racers::attacks::SpectreBack;
use hacky_racers::layout::Layout;
use hacky_racers::machine::Machine;
use hacky_racers::magnify::{ArithmeticMagnifier, PlruInput, PlruMagnifier};
use hacky_racers::path::PathSpec;
use hacky_racers::racing::{ReorderRace, TransientPaRace};
use racer_isa::{AluOp, Instr, Program};
use racer_mem::Addr;

/// Assert a program stays inside the sandboxed-JavaScript instruction set.
fn assert_sandbox_legal(name: &str, prog: &Program) {
    for (i, instr) in prog.instrs().iter().enumerate() {
        match instr {
            Instr::Flush { .. } => panic!("{name}: instruction {i} is a flush (not in §3)"),
            Instr::Fence => panic!("{name}: instruction {i} is a fence (not in §3)"),
            Instr::Store { .. } => {
                panic!("{name}: instruction {i} is a store (attacks are read-only)")
            }
            _ => {}
        }
    }
}

#[test]
fn racing_gadget_programs_are_sandbox_legal() {
    let layout = Layout::default();
    let pa = TransientPaRace::new(layout);
    let prog = pa.program(
        &PathSpec::op_chain(AluOp::Add, 20),
        &PathSpec::op_chain(AluOp::Mul, 5),
    );
    assert_sandbox_legal("transient P/A race", &prog);

    let ro = ReorderRace::new(layout);
    let prog = ro.program(
        &PathSpec::op_chain(AluOp::Add, 10),
        &PathSpec::op_chain(AluOp::Add, 20),
        Addr(0x0700_0000),
        Addr(0x0700_2000),
    );
    assert_sandbox_legal("reorder race", &prog);
}

#[test]
fn magnifier_programs_are_sandbox_legal() {
    let m = Machine::baseline();
    let mag = PlruMagnifier::with(m.layout(), 5, 50);
    assert_sandbox_legal(
        "PLRU magnifier (P/A)",
        &mag.program(&m, PlruInput::PresenceAbsence),
    );
    assert_sandbox_legal(
        "PLRU magnifier (reorder)",
        &mag.program(&m, PlruInput::Reorder),
    );

    let arith = ArithmeticMagnifier::new(m.layout());
    assert_sandbox_legal("arithmetic magnifier", &arith.program(10));
}

#[test]
fn spectre_back_program_is_sandbox_legal() {
    let m = Machine::baseline();
    let atk = SpectreBack::new(m.layout());
    assert_sandbox_legal("SpectreBack", &atk.program(&m));
}

#[test]
fn gadget_programs_contain_no_fine_grained_timer_reads() {
    // There is no timer-read instruction in the ISA at all; the only clock
    // is the host-side coarse timer. This test documents that invariant by
    // construction: the instruction set enumerates every effect a program
    // can have, and none of them reads time.
    let m = Machine::baseline();
    let atk = SpectreBack::new(m.layout());
    let prog = atk.program(&m);
    assert!(prog
        .instrs()
        .iter()
        .all(|i| !matches!(i, Instr::Flush { .. } | Instr::Fence)));
}
