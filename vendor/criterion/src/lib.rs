//! Minimal offline stand-in for the `criterion` crate.
//!
//! Supports the workspace's bench targets: `Criterion::bench_function`,
//! `benchmark_group` with `throughput`/`sample_size`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros. Each benchmark is timed
//! with `std::time::Instant` over a fixed warm-up + measurement loop and the
//! mean per-iteration time is printed — enough for coarse regression
//! tracking without the real crate's statistics.

use std::sync::OnceLock;
use std::time::Instant;

/// Whether the harness was invoked with `--test` (e.g.
/// `cargo bench --bench batch -- --test`): run every benchmark body once
/// with no warm-up and no timing claims — a smoke mode so CI can prove
/// bench targets still *run* without paying measurement time, mirroring
/// real criterion's `--test` flag.
fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Work-unit annotation for throughput reporting.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    warmup: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f`, first warming up, then averaging over the measurement runs.
    /// In [`smoke_mode`] the body runs exactly once, untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), None, 10, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup {
    prefix: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Annotate subsequent benchmarks with a work unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the measurement iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{name}", self.prefix),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Finish the group (report-flushing no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    iters: u64,
    mut f: F,
) {
    if smoke_mode() {
        let mut b = Bencher {
            iters: 1,
            warmup: 0,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("test bench {name} ... ok (smoke, untimed)");
        return;
    }
    let mut b = Bencher {
        iters,
        warmup: 3,
        mean_ns: 0.0,
    };
    f(&mut b);
    match throughput {
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            let per_sec = n as f64 / (b.mean_ns * 1e-9);
            println!(
                "bench {name}: {:.1} ns/iter ({per_sec:.0} elem/s)",
                b.mean_ns
            );
        }
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            let per_sec = n as f64 / (b.mean_ns * 1e-9);
            println!("bench {name}: {:.1} ns/iter ({per_sec:.0} B/s)", b.mean_ns);
        }
        _ => println!("bench {name}: {:.1} ns/iter", b.mean_ns),
    }
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
