//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with samplers for ranges, tuples, `Just`, `any` and
//! `collection::vec`; the `proptest!` test-generating macro; and the
//! `prop_assert*` / `prop_assume!` assertion forms. Unlike the real crate
//! there is no shrinking and no persisted failure seeds — cases are drawn
//! from a fixed-seed SplitMix64 stream, so failures reproduce exactly on
//! every run.

use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// Deterministic generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator (failures reproduce on every run).
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x3243_F6A8_885A_308D,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for [`Arbitrary`] types (see [`any`]).
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Uniform choice between same-typed strategies (see `prop_oneof!`).
#[derive(Clone, Debug)]
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths a `vec` strategy accepts: an exact size or a range.
    pub trait IntoSizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy for vectors of `elem` values (see [`vec`]).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `len` and elements from `elem`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, OneOf, ProptestConfig, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Generate `#[test]` functions that run their body over [`CASES`] random
/// samplings of the declared strategies (override the count with an inner
/// `#![proptest_config(ProptestConfig::with_cases(n))]` attribute).
#[macro_export]
macro_rules! proptest {
    (@cases ($n:expr)) => {};
    (@cases ($n:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..$n {
                let __vals = ($($crate::Strategy::sample(&($strat), &mut __rng),)*);
                let __run_case = move || {
                    let ($($pat,)*) = __vals;
                    $body
                };
                __run_case();
            }
        }
        $crate::proptest!(@cases ($n) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cases (($cfg).cases) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases ($crate::CASES) $($rest)*);
    };
}

/// Uniform choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strat),+])
    };
}

/// Assertion inside a `proptest!` body (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current random case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 3usize..10,
            v in collection::vec(any::<u64>(), 2..5),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assume!(x < 9); // exercises the skip path on some cases
            prop_assert_eq!(x + usize::from(flag), x + usize::from(flag));
        }

        #[test]
        fn oneof_picks_members(k in prop_oneof![Just(1u8), Just(2), Just(4)]) {
            prop_assert_ne!(k, 3);
            prop_assert!(k == 1 || k == 2 || k == 4);
        }
    }
}
