//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the exact API surface the workspace uses — `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer and float
//! ranges — backed by SplitMix64. The workspace only needs *deterministic
//! per-seed* pseudo-randomness (replacement-policy tie-breaking, timer
//! jitter), not the real crate's stream values, so the generator identity is
//! free to differ from upstream `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Seeding trait mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a `Range`/`RangeInclusive` can uniformly sample.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draw a value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Primitive types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
