//! Minimal offline stand-in for the `serde` crate.
//!
//! The repository annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so results can be exported once the real serde is
//! available, but no code path in the workspace performs serialization.
//! This stub provides the two marker traits and re-exports no-op derives,
//! which is exactly the surface the workspace consumes. Replace the
//! `[workspace.dependencies]` path entry with a crates.io version to get
//! real serialization back.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Never implemented or required by
/// workspace code; present so `use serde::Serialize` resolves.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Sized {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Namespace parity with the real crate (`serde::de`, `serde::ser`).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace parity with the real crate.
pub mod ser {
    pub use crate::Serialize;
}
