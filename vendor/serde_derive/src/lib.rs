//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace uses the derives purely as annotations today (no code path
//! actually serializes), so the stub derives expand to nothing. The `serde`
//! helper attribute is still registered so `#[serde(...)]` field attributes
//! parse if they ever appear.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
